package core

import (
	"fmt"
	"math"
	"path"
	"sort"
	"strings"
	"sync"

	"dualtable/internal/costmodel"
	"dualtable/internal/datum"
	"dualtable/internal/dfs"
	"dualtable/internal/hive"
	"dualtable/internal/kvstore"
	"dualtable/internal/mapred"
	"dualtable/internal/metastore"
	"dualtable/internal/orcfile"
	"dualtable/internal/sim"
)

const (
	// attachedFamily is the column family of attached-table cells.
	attachedFamily = "d"
	// deleteQualifier marks a deleted record (the paper's "special
	// HBase cell" delete marker, §V-B).
	deleteQualifier = "__del__"
	// metaTableName is the system-wide metadata table holding the
	// incremental file ID counters (paper §V-B).
	metaTableName = "dualtable_meta"
	// fileIDMetaKey is the ORC user-metadata key storing the file ID.
	fileIDMetaKey = "dualtable.fileid"
	// genProperty is the table property holding the incarnation tag a
	// CREATE assigns. Every physical name the handler derives (attached
	// KV table, master directory, file-ID counter row) embeds it, so a
	// table re-created while a pin-aware DROP's reclamation is still
	// pending gets fresh storage instead of resurrecting the doomed
	// incarnation's rows and colliding with its condemned files.
	genProperty = "dualtable.gen"
)

// Options tunes the DualTable handler.
type Options struct {
	// FollowingReads is k in the cost model: the number of full-table
	// reads expected after a modification. Settable per table via the
	// table property "dualtable.k".
	FollowingReads float64
	// ForcePlan overrides the cost model ("EDIT" or "OVERWRITE");
	// empty means cost-model selection. The experiment harness uses
	// this to run the paper's "DualTable EDIT" configuration.
	ForcePlan string
	// MarkerBytes is m, the delete marker size used by the cost model.
	MarkerBytes float64
}

// Handler implements hive.StorageHandler, hive.DMLHandler and
// hive.Compactor for STORED AS DUALTABLE tables.
type Handler struct {
	e     *hive.Engine
	model *costmodel.Model
	est   *costmodel.RatioEstimator
	opts  Options

	mu     sync.Mutex
	meta   *kvstore.Table
	states map[string]*tableState // per-table writer/publish locks
	// planLog records the plan chosen for each DML statement, newest
	// last (observability for tests and the harness).
	planLog []PlanDecision
	// onCompactStaged, when set, runs after a COMPACT's rewrite job
	// finishes but before its epoch publishes (test hook for holding a
	// compaction mid-flight while concurrent scans run).
	onCompactStaged func(table string)

	// cleanupMu guards the crash-consistency ledgers (recovery.go):
	// condemned holds staged/orphaned files whose removal exhausted its
	// retries, pinDebt counts Unpins that could not be delivered. Both
	// are re-driven after every publish and by RecoverOrphans.
	cleanupMu sync.Mutex
	condemned map[string]bool
	pinDebt   map[string]int
}

// PlanDecision records one cost-model decision.
type PlanDecision struct {
	Table     string
	Statement string
	Plan      costmodel.Plan
	Ratio     float64
	RatioSrc  string
	CostDelta float64 // CostU or CostD (positive → EDIT)
}

// Register installs the DualTable storage handler on an engine.
func Register(e *hive.Engine, opts Options) (*Handler, error) {
	if opts.FollowingReads == 0 {
		opts.FollowingReads = 1
	}
	if opts.MarkerBytes == 0 {
		opts.MarkerBytes = 16
	}
	model, err := costmodel.New(costmodel.RatesFromCluster(e.MR.Params))
	if err != nil {
		return nil, err
	}
	h := &Handler{
		e:      e,
		model:  model,
		est:    costmodel.NewRatioEstimator(),
		opts:   opts,
		states: map[string]*tableState{},
	}
	if !e.KV.HasTable(metaTableName) {
		if _, err := e.KV.CreateTable(metaTableName); err != nil {
			return nil, err
		}
	}
	h.meta, err = e.KV.Table(metaTableName)
	if err != nil {
		return nil, err
	}
	e.RegisterHandler(metastore.StorageDual, h)
	return h, nil
}

// Estimator exposes the ratio estimator (for designer hints).
func (h *Handler) Estimator() *costmodel.RatioEstimator { return h.est }

// Model exposes the cost model.
func (h *Handler) Model() *costmodel.Model { return h.model }

// SetForcePlan switches plan forcing at run time (harness knob).
// Sessions override this per call via the "dualtable.force.plan"
// setting.
func (h *Handler) SetForcePlan(plan string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.opts.ForcePlan = plan
}

// SetFollowingReads sets k.
func (h *Handler) SetFollowingReads(k float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.opts.FollowingReads = k
}

// forcePlan reads the handler-level force setting under the mutex.
func (h *Handler) forcePlan() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.opts.ForcePlan
}

// followingReads reads the handler-level k under the mutex.
func (h *Handler) followingReads() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.opts.FollowingReads
}

// markerBytes reads the marker size under the mutex.
func (h *Handler) markerBytes() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.opts.MarkerBytes
}

// PlanLog returns a copy of recorded plan decisions.
func (h *Handler) PlanLog() []PlanDecision {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]PlanDecision(nil), h.planLog...)
}

// logPlan records a decision in the handler-global log and forwards
// it to the calling session's observer, so concurrent sessions each
// see exactly their own decisions.
func (h *Handler) logPlan(ec *hive.ExecContext, d PlanDecision) {
	h.mu.Lock()
	h.planLog = append(h.planLog, d)
	if len(h.planLog) > 1024 {
		h.planLog = h.planLog[len(h.planLog)-1024:]
	}
	h.mu.Unlock()
	ec.ObservePlan(d)
}

// SetCompactStagedHook installs a callback that runs after a
// COMPACT's rewrite job completes but before its new epoch publishes
// (nil to clear). Tests use it to hold a compaction mid-flight and
// prove concurrent scans neither block on it nor observe it.
func (h *Handler) SetCompactStagedHook(fn func(table string)) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.onCompactStaged = fn
}

// compactStagedHook reads the hook under the mutex.
func (h *Handler) compactStagedHook() func(string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.onCompactStaged
}

// masterDir is the incarnation's master-file directory. Tables created
// before incarnation tags fall back to the legacy location/master.
func masterDir(desc *metastore.TableDesc) string {
	if g := desc.Properties[genProperty]; g != "" {
		return path.Join(desc.Location, "master_"+g)
	}
	return path.Join(desc.Location, "master")
}

// attachedName is the incarnation's attached KV table name.
func attachedName(desc *metastore.TableDesc) string {
	base := "dt_" + strings.ToLower(desc.Name) + "_attached"
	if g := desc.Properties[genProperty]; g != "" {
		return base + "_" + g
	}
	return base
}

// metaRow is the incarnation's file-ID counter row in the system
// metadata table.
func metaRow(desc *metastore.TableDesc) []byte {
	key := strings.ToLower(desc.Name)
	if g := desc.Properties[genProperty]; g != "" {
		key += "#" + g
	}
	return []byte(key)
}

// Create provisions the master directory, the attached table, the
// file ID counter (paper §III-C CREATE), and the table's epoch-0
// manifest (empty file set). Each CREATE is a fresh incarnation: its
// physical names carry a unique tag, so creating a name whose previous
// incarnation is still being reclaimed (pin-aware DROP with snapshots
// in flight) starts from genuinely empty storage.
func (h *Handler) Create(desc *metastore.TableDesc) error {
	if desc.Properties == nil {
		desc.Properties = map[string]string{}
	}
	desc.Properties[genProperty] = fmt.Sprintf("g%d", h.e.KV.NextTs())
	// Reset the per-table concurrency state: a dropped previous
	// incarnation's state (pending reclamation, dropped flag) must not
	// leak into the new table. Snapshots of the old incarnation hold
	// direct pointers to the old state, so their releases still land
	// there.
	h.mu.Lock()
	h.states[strings.ToLower(desc.Name)] = &tableState{}
	h.mu.Unlock()
	if err := h.e.FS.MkdirAll(masterDir(desc)); err != nil {
		return err
	}
	if _, err := h.e.KV.CreateTable(attachedName(desc)); err != nil {
		return err
	}
	// A leftover chain — from a partially failed CREATE or a previous
	// incarnation awaiting reclamation — is reset, not grown: the
	// table is brand new and starts at an empty epoch 0.
	h.e.MS.DropManifests(desc.Name)
	if err := h.e.MS.PublishManifest(&metastore.Manifest{
		Table:     desc.Name,
		Epoch:     0,
		Watermark: h.e.KV.NextTs(),
	}); err != nil {
		return err
	}
	return h.meta.PutRow(metaRow(desc), attachedFamily,
		map[string][]byte{"nextfile": []byte("1")}, nil)
}

// dropJob captures everything a pin-aware DROP must reclaim once the
// table's last pinned snapshot releases: the incarnation's attached KV
// table, manifest chain (by identity, so a re-CREATE's chain is safe),
// file-ID counter row, and master directory.
type dropJob struct {
	table     string
	attached  string
	metaRow   []byte
	masterDir string
	location  string
	chainID   uint64
	hasChain  bool
}

// Drop removes the table (paper §III-C DROP) while honoring the MVCC
// contract: instead of deleting master files out from under pinned
// scans, it hands the current manifest's files to the DFS's deferred
// deletion (a scan that pinned its snapshot before the DROP completes
// byte-identically), marks the table state dropped so new snapshot
// opens fail immediately, and defers the rest of the reclamation —
// attached KV table, manifest chain, metadata row, master directory —
// until the last pinned snapshot releases. The engine removes the
// metastore descriptor first, so new scans and writes see
// ErrTableNotFound the moment the DROP statement runs.
func (h *Handler) Drop(desc *metastore.TableDesc) error {
	st := h.state(desc.Name)
	// Serialize against writers: an INSERT/EDIT/COMPACT in flight
	// finishes (or aborts) before the table goes away.
	st.writer.Lock()
	defer st.writer.Unlock()

	st.pub.Lock()
	if st.dropped {
		st.pub.Unlock()
		return nil // already dropped (idempotent)
	}
	man, manErr := h.currentManifestLocked(desc)
	st.dropped = true
	job := &dropJob{
		table:     desc.Name,
		attached:  attachedName(desc),
		metaRow:   metaRow(desc),
		masterDir: masterDir(desc),
		location:  desc.Location,
	}
	job.chainID, job.hasChain = h.e.MS.ManifestChainID(desc.Name)
	// Time travel dies with the table: release every retention pin so
	// the files' deferred deletions can fire once scans let go.
	for _, re := range st.retained {
		for _, f := range re.files {
			h.unpinDeferred(f.Path)
		}
	}
	st.retained = nil
	reclaimNow := st.snaps == 0
	if !reclaimNow {
		st.pendingDrop = job
	}
	st.pub.Unlock()

	// Condemn the current manifest's files: removed immediately unless
	// a pinned snapshot still reads them. Transient faults retry; a
	// path that still fails lands in the condemned ledger so a later
	// publish or recovery scan re-drives it.
	if manErr == nil {
		for _, f := range man.Files {
			if err := h.removeMasterFile(f.Path); err != nil {
				h.condemn(f.Path)
			}
		}
	}
	if reclaimNow {
		// Best effort: the tombstone already committed (the engine
		// removed the descriptor before calling Drop), so a failed
		// cleanup step must not fail the statement — the table would
		// be gone from the namespace yet report an error, and the DROP
		// is not retryable through SQL. A missed step only leaks
		// storage, the same stance publishReplace takes for post-swap
		// cleanup.
		_ = h.reclaim(job)
	}
	return nil
}

// reclaim finishes a DROP once no snapshot pins the table: it removes
// the incarnation's attached KV table, manifest chain, file-ID counter
// row and master directory, then the table location itself when
// nothing else (a newer incarnation) lives there.
func (h *Handler) reclaim(job *dropJob) error {
	var firstErr error
	if h.e.KV.HasTable(job.attached) {
		if err := h.e.KV.DropTable(job.attached); err != nil {
			firstErr = err
		}
	}
	if job.hasChain {
		h.e.MS.DropManifestsByID(job.table, job.chainID)
	}
	if err := h.meta.DeleteRow(job.metaRow, nil); err != nil && firstErr == nil {
		firstErr = err
	}
	if h.e.FS.Exists(job.masterDir) {
		err := retryDFS(func() error { return h.e.FS.Delete(job.masterDir, true) })
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// Best effort: the location root goes away only when empty (a
	// re-created incarnation keeps its own master directory there).
	if h.e.FS.Exists(job.location) {
		_ = h.e.FS.Delete(job.location, false)
	}
	return firstErr
}

// attached returns the table's attached kv table.
func (h *Handler) attached(desc *metastore.TableDesc) (*kvstore.Table, error) {
	return h.e.KV.Table(attachedName(desc))
}

// nextFileID allocates one incremental file ID from the system
// metadata table (paper §V-B: "we maintain an incremental integer
// file ID for each DualTable in the system wide metadata table").
func (h *Handler) nextFileID(desc *metastore.TableDesc, m *sim.Meter) (uint32, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	row := metaRow(desc)
	cells, err := h.meta.Get(row, m)
	if err != nil {
		return 0, err
	}
	next := uint32(1)
	for _, c := range cells {
		if string(c.Qualifier) == "nextfile" {
			var v uint64
			fmt.Sscanf(string(c.Value), "%d", &v)
			next = uint32(v)
			break // cells are newest-version-first
		}
	}
	err = h.meta.PutRow(row, attachedFamily,
		map[string][]byte{"nextfile": []byte(fmt.Sprintf("%d", next+1))}, m)
	if err != nil {
		return 0, err
	}
	return next, nil
}

// masterFile describes one master ORC file.
type masterFile struct {
	path   string
	size   int64
	fileID uint32
	rows   int64
	reader *orcfile.Reader
}

// masterFiles opens the footers of all master files found in the
// master directory. It is the manifest-synthesis path for tables that
// predate epoch manifests; every current read path resolves the file
// set from the table's manifest instead (see snapshot.go).
func (h *Handler) masterFiles(desc *metastore.TableDesc) ([]masterFile, error) {
	infos, err := h.e.FS.ListFiles(masterDir(desc))
	if err != nil {
		return nil, err
	}
	var out []masterFile
	for _, fi := range infos {
		if strings.HasPrefix(fi.Name, ".") {
			continue
		}
		fr, err := h.e.FS.Open(fi.Path)
		if err != nil {
			return nil, err
		}
		rd, err := orcfile.Open(fr, fr.Size())
		if err != nil {
			fr.Close()
			return nil, fmt.Errorf("core: open master file %s: %w", fi.Path, err)
		}
		var fid uint64
		if _, err := fmt.Sscanf(rd.UserMeta()[fileIDMetaKey], "%d", &fid); err != nil {
			fr.Close()
			return nil, fmt.Errorf("core: master file %s has no file ID", fi.Path)
		}
		fr.Close()
		out = append(out, masterFile{path: fi.Path, size: fi.Size, fileID: uint32(fid), rows: rd.NumRows(), reader: rd})
	}
	return out, nil
}

// Splits returns UNION READ splits: one per master file, each merging
// the ORC rows with the attached table's modifications for that
// file's record ID range (paper §III-C UNION READ, §V-B). The splits
// resolve the current epoch's snapshot; attached entries are
// materialized into them, but the master files are not kept pinned —
// callers that must survive a concurrent COMPACT/OVERWRITE use
// PinnedSplits, which the SQL engine's scan planner picks up via the
// hive.SnapshotScanner interface.
func (h *Handler) Splits(desc *metastore.TableDesc, opts ScanOptions) ([]mapred.InputSplit, error) {
	snap, err := h.snapshotFor(desc, opts)
	if err != nil {
		return nil, err
	}
	splits := snap.Splits(opts)
	snap.Release()
	return splits, nil
}

// PinnedSplits implements hive.SnapshotScanner: the returned release
// function unpins the snapshot once the scan's job has consumed the
// splits. Until then a concurrent COMPACT/OVERWRITE may publish new
// epochs freely — the pinned files outlive their manifest via the
// DFS's deferred deletion, so the scan completes against the exact
// epoch it opened. When opts.AsOfEpoch is set, the snapshot pins that
// historical epoch instead of the current one (AS OF EPOCH reads).
func (h *Handler) PinnedSplits(desc *metastore.TableDesc, opts ScanOptions) ([]mapred.InputSplit, func(), error) {
	snap, err := h.snapshotFor(desc, opts)
	if err != nil {
		return nil, nil, err
	}
	return snap.Splits(opts), snap.Release, nil
}

// snapshotFor opens the snapshot a scan's options ask for: the current
// epoch, or a pinned historical epoch for time-travel reads.
func (h *Handler) snapshotFor(desc *metastore.TableDesc, opts ScanOptions) (*Snapshot, error) {
	if opts.AsOfEpoch != nil {
		return h.OpenSnapshotAt(desc, *opts.AsOfEpoch)
	}
	return h.OpenSnapshot(desc)
}

// ScanOptions aliases hive.ScanOptions (same package shape).
type ScanOptions = hive.ScanOptions

// RowCount sums the current manifest's row counts (visible rows may
// be fewer if delete markers exist; the cost model wants the master
// size). Manifest-backed, so no footer I/O.
func (h *Handler) RowCount(desc *metastore.TableDesc) (int64, error) {
	man, err := h.currentManifest(desc)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, f := range man.Files {
		total += f.Rows
	}
	return total, nil
}

// DataSize returns the master table byte size (D in the cost model):
// the current manifest's file sizes, which — unlike a directory du —
// exclude in-flight staged writes and condemned pre-compaction files
// awaiting deferred deletion.
func (h *Handler) DataSize(desc *metastore.TableDesc) (int64, error) {
	man, err := h.currentManifest(desc)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, f := range man.Files {
		total += f.Size
	}
	return total, nil
}

// currentManifest resolves the current manifest under the publish
// lock.
func (h *Handler) currentManifest(desc *metastore.TableDesc) (*metastore.Manifest, error) {
	st := h.state(desc.Name)
	st.pub.Lock()
	defer st.pub.Unlock()
	return h.currentManifestLocked(desc)
}

// AttachedEntryCount returns the number of attached-table cells that
// belong to the current manifest's master files (UNION READ overhead
// indicator; COMPACT trigger input). Cells keyed by superseded file
// IDs — kept alive only so time-travel reads inside the retention
// window can reconstruct old epochs — do not count: they are invisible
// to current scans.
func (h *Handler) AttachedEntryCount(desc *metastore.TableDesc) (int64, error) {
	att, err := h.attached(desc)
	if err != nil {
		return 0, err
	}
	st := h.state(desc.Name)
	st.pub.Lock()
	scanRanges := st.everRetained
	st.pub.Unlock()
	if !scanRanges {
		// No retained ranges ever existed: every cell belongs to a
		// current master file, so the O(regions) raw count is exact.
		return att.EntryCount(), nil
	}
	// Retained (or purged) ranges exist: the raw count would include
	// dead cells and purge tombstones, so count the current ranges
	// directly — O(live delta), the very quantity being measured.
	man, err := h.currentManifest(desc)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, f := range man.Files {
		start, end := FileRange(f.FileID)
		sc := att.NewScanner(kvstore.Scan{Start: start, End: end, MaxVersions: math.MaxInt32})
		for {
			if _, ok := sc.Next(); !ok {
				break
			}
			total++
		}
		sc.Close()
	}
	return total, nil
}

// Append returns a factory writing new master files, each with a
// freshly allocated file ID (paper §III-C LOAD/INSERT: "data are
// loaded and inserted into the Master Table"). The files land in the
// master directory but stay invisible to scans until Commit publishes
// a new epoch appending them to the manifest; Abort deletes them.
// The per-table writer lock is held from here to Commit/Abort, so
// appends serialize against OVERWRITE and COMPACT — while snapshot
// scans proceed untouched.
func (h *Handler) Append(desc *metastore.TableDesc) (mapred.OutputFactory, hive.Committer, error) {
	st := h.state(desc.Name)
	st.writer.Lock()
	factory := &masterOutputFactory{h: h, desc: desc, dir: masterDir(desc)}
	return factory, &publishCommitter{h: h, desc: desc, factory: factory,
		unlock: st.writer.Unlock, replace: false}, nil
}

// Overwrite writes a fresh master file set and, on Commit, atomically
// swaps the manifest to exactly that set and clears the attached
// table — the OVERWRITE plan's storage semantics (§III-C: "replace
// the existing Master Table and Attached Table with a newly generated
// Master Table and an empty Attached Table"). No staging directory is
// needed: manifest publication is the commit point, and superseded
// files are removed by deferred deletion once no snapshot pins them.
func (h *Handler) Overwrite(desc *metastore.TableDesc) (mapred.OutputFactory, hive.Committer, error) {
	st := h.state(desc.Name)
	st.writer.Lock()
	factory := &masterOutputFactory{h: h, desc: desc, dir: masterDir(desc)}
	return factory, &publishCommitter{h: h, desc: desc, factory: factory,
		unlock: st.writer.Unlock, replace: true}, nil
}

// publishCommitter finalizes a bulk write by publishing a new epoch:
// append mode adds the written files to the manifest, replace mode
// (OVERWRITE) swaps the file set wholesale. Abort deletes the written
// files; nothing was published, so the table is untouched.
type publishCommitter struct {
	h       *Handler
	desc    *metastore.TableDesc
	factory *masterOutputFactory
	unlock  func()
	replace bool
}

func (c *publishCommitter) Commit() error {
	defer c.unlock()
	var err error
	if c.replace {
		err = c.h.publishReplace(c.desc, c.factory.files())
	} else {
		err = c.h.publishAppend(c.desc, c.factory.files())
	}
	if err != nil {
		// The manifest swap is the commit point and it did not happen:
		// the staged files are invisible and must not outlive the
		// statement (callers report the publish error and move on, so
		// nobody else will ever discard them).
		_ = c.factory.discard()
		return err
	}
	return nil
}

func (c *publishCommitter) Abort() error {
	defer c.unlock()
	return c.factory.discard()
}

// masterOutputFactory writes ORC master files with allocated file
// IDs, tracking every file it creates so the committer can publish
// (or discard) exactly that set.
type masterOutputFactory struct {
	h    *Handler
	desc *metastore.TableDesc
	dir  string

	mu      sync.Mutex
	written []metastore.ManifestFile
	// opened tracks files created but not yet recorded: a task that
	// errors out (or a torn write) leaves its in-flight file unclosed
	// and unrecorded, and discard must reclaim those too.
	opened map[string]bool
}

func (f *masterOutputFactory) NewCollector(taskID int, m *sim.Meter) (mapred.Collector, error) {
	return &masterCollector{f: f, taskID: taskID, meter: m}, nil
}

// noteOpened registers an in-flight file the moment it is created.
func (f *masterOutputFactory) noteOpened(p string) {
	f.mu.Lock()
	if f.opened == nil {
		f.opened = map[string]bool{}
	}
	f.opened[p] = true
	f.mu.Unlock()
}

// record registers one finished master file.
func (f *masterOutputFactory) record(mf metastore.ManifestFile) {
	f.mu.Lock()
	f.written = append(f.written, mf)
	delete(f.opened, mf.Path)
	f.mu.Unlock()
}

// files returns the manifest entries of everything written, ordered
// by file ID so manifests are deterministic regardless of task
// completion order.
func (f *masterOutputFactory) files() []metastore.ManifestFile {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := append([]metastore.ManifestFile(nil), f.written...)
	sort.Slice(out, func(i, j int) bool { return out[i].FileID < out[j].FileID })
	return out
}

// discard deletes every file this factory created — finished and
// in-flight alike (abort path; none were published). Abandoned write
// leases are recovered, transient faults retried, and paths that still
// fail are condemned to the handler ledger, so an abort never leaks a
// staged file no matter how the DFS misbehaves.
func (f *masterOutputFactory) discard() error {
	f.mu.Lock()
	paths := make([]string, 0, len(f.written)+len(f.opened))
	for _, mf := range f.written {
		paths = append(paths, mf.Path)
	}
	for p := range f.opened {
		paths = append(paths, p)
	}
	f.written = nil
	f.opened = nil
	f.mu.Unlock()

	var firstErr error
	for _, p := range paths {
		if err := f.h.removeMasterFile(p); err != nil {
			f.h.condemn(p)
			if firstErr == nil {
				firstErr = err
			}
		}
	}
	return firstErr
}

type masterCollector struct {
	f      *masterOutputFactory
	taskID int
	meter  *sim.Meter
	fw     *dfs.FileWriter
	w      *orcfile.Writer
	path   string
	fileID uint32
	rows   int64
}

func (c *masterCollector) Collect(row datum.Row) error {
	if c.w == nil {
		fid, err := c.f.h.nextFileID(c.f.desc, c.meter)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("m-%08d.orc", fid)
		p := path.Join(c.f.dir, name)
		fw, err := c.f.h.e.FS.CreateMeter(p, c.meter)
		if err != nil {
			return err
		}
		c.f.noteOpened(p)
		fw.SetFileID(uint64(fid))
		fw.SetUserMeta(fileIDMetaKey, fmt.Sprintf("%d", fid))
		w, err := orcfile.NewWriter(fw, c.f.desc.Schema, orcfile.WriterOptions{
			Compression: true,
			UserMeta:    map[string]string{fileIDMetaKey: fmt.Sprintf("%d", fid)},
		})
		if err != nil {
			return err
		}
		c.fw, c.w, c.path, c.fileID = fw, w, p, fid
	}
	c.rows++
	return c.w.WriteRow(row)
}

func (c *masterCollector) Close() error {
	if c.w == nil {
		return nil
	}
	if err := c.w.Close(); err != nil {
		return err
	}
	if err := c.fw.Close(); err != nil {
		return err
	}
	fi, err := c.f.h.e.FS.Stat(c.path)
	if err != nil {
		return err
	}
	c.f.record(metastore.ManifestFile{Path: c.path, Size: fi.Size, FileID: c.fileID, Rows: c.rows})
	return nil
}
