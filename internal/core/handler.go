package core

import (
	"fmt"
	"path"
	"strings"
	"sync"

	"dualtable/internal/costmodel"
	"dualtable/internal/datum"
	"dualtable/internal/dfs"
	"dualtable/internal/hive"
	"dualtable/internal/kvstore"
	"dualtable/internal/mapred"
	"dualtable/internal/metastore"
	"dualtable/internal/orcfile"
	"dualtable/internal/sim"
)

const (
	// attachedFamily is the column family of attached-table cells.
	attachedFamily = "d"
	// deleteQualifier marks a deleted record (the paper's "special
	// HBase cell" delete marker, §V-B).
	deleteQualifier = "__del__"
	// metaTableName is the system-wide metadata table holding the
	// incremental file ID counters (paper §V-B).
	metaTableName = "dualtable_meta"
	// fileIDMetaKey is the ORC user-metadata key storing the file ID.
	fileIDMetaKey = "dualtable.fileid"
)

// Options tunes the DualTable handler.
type Options struct {
	// FollowingReads is k in the cost model: the number of full-table
	// reads expected after a modification. Settable per table via the
	// table property "dualtable.k".
	FollowingReads float64
	// ForcePlan overrides the cost model ("EDIT" or "OVERWRITE");
	// empty means cost-model selection. The experiment harness uses
	// this to run the paper's "DualTable EDIT" configuration.
	ForcePlan string
	// MarkerBytes is m, the delete marker size used by the cost model.
	MarkerBytes float64
}

// Handler implements hive.StorageHandler, hive.DMLHandler and
// hive.Compactor for STORED AS DUALTABLE tables.
type Handler struct {
	e     *hive.Engine
	model *costmodel.Model
	est   *costmodel.RatioEstimator
	opts  Options

	mu    sync.Mutex
	meta  *kvstore.Table
	locks map[string]*sync.RWMutex // per-table COMPACT locks
	// planLog records the plan chosen for each DML statement, newest
	// last (observability for tests and the harness).
	planLog []PlanDecision
}

// PlanDecision records one cost-model decision.
type PlanDecision struct {
	Table     string
	Statement string
	Plan      costmodel.Plan
	Ratio     float64
	RatioSrc  string
	CostDelta float64 // CostU or CostD (positive → EDIT)
}

// Register installs the DualTable storage handler on an engine.
func Register(e *hive.Engine, opts Options) (*Handler, error) {
	if opts.FollowingReads == 0 {
		opts.FollowingReads = 1
	}
	if opts.MarkerBytes == 0 {
		opts.MarkerBytes = 16
	}
	model, err := costmodel.New(costmodel.RatesFromCluster(e.MR.Params))
	if err != nil {
		return nil, err
	}
	h := &Handler{
		e:     e,
		model: model,
		est:   costmodel.NewRatioEstimator(),
		opts:  opts,
		locks: map[string]*sync.RWMutex{},
	}
	if !e.KV.HasTable(metaTableName) {
		if _, err := e.KV.CreateTable(metaTableName); err != nil {
			return nil, err
		}
	}
	h.meta, err = e.KV.Table(metaTableName)
	if err != nil {
		return nil, err
	}
	e.RegisterHandler(metastore.StorageDual, h)
	return h, nil
}

// Estimator exposes the ratio estimator (for designer hints).
func (h *Handler) Estimator() *costmodel.RatioEstimator { return h.est }

// Model exposes the cost model.
func (h *Handler) Model() *costmodel.Model { return h.model }

// SetForcePlan switches plan forcing at run time (harness knob).
// Sessions override this per call via the "dualtable.force.plan"
// setting.
func (h *Handler) SetForcePlan(plan string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.opts.ForcePlan = plan
}

// SetFollowingReads sets k.
func (h *Handler) SetFollowingReads(k float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.opts.FollowingReads = k
}

// forcePlan reads the handler-level force setting under the mutex.
func (h *Handler) forcePlan() string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.opts.ForcePlan
}

// followingReads reads the handler-level k under the mutex.
func (h *Handler) followingReads() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.opts.FollowingReads
}

// markerBytes reads the marker size under the mutex.
func (h *Handler) markerBytes() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.opts.MarkerBytes
}

// PlanLog returns a copy of recorded plan decisions.
func (h *Handler) PlanLog() []PlanDecision {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]PlanDecision(nil), h.planLog...)
}

// logPlan records a decision in the handler-global log and forwards
// it to the calling session's observer, so concurrent sessions each
// see exactly their own decisions.
func (h *Handler) logPlan(ec *hive.ExecContext, d PlanDecision) {
	h.mu.Lock()
	h.planLog = append(h.planLog, d)
	if len(h.planLog) > 1024 {
		h.planLog = h.planLog[len(h.planLog)-1024:]
	}
	h.mu.Unlock()
	ec.ObservePlan(d)
}

// tableLock returns the COMPACT lock of a table.
func (h *Handler) tableLock(name string) *sync.RWMutex {
	h.mu.Lock()
	defer h.mu.Unlock()
	key := strings.ToLower(name)
	l, ok := h.locks[key]
	if !ok {
		l = &sync.RWMutex{}
		h.locks[key] = l
	}
	return l
}

func masterDir(desc *metastore.TableDesc) string {
	return path.Join(desc.Location, "master")
}

func attachedName(desc *metastore.TableDesc) string {
	return "dt_" + strings.ToLower(desc.Name) + "_attached"
}

// Create provisions the master directory, the attached table, and the
// file ID counter (paper §III-C CREATE).
func (h *Handler) Create(desc *metastore.TableDesc) error {
	if err := h.e.FS.MkdirAll(masterDir(desc)); err != nil {
		return err
	}
	if _, err := h.e.KV.CreateTable(attachedName(desc)); err != nil {
		return err
	}
	return h.meta.PutRow([]byte(strings.ToLower(desc.Name)), attachedFamily,
		map[string][]byte{"nextfile": []byte("1")}, nil)
}

// Drop removes master, attached and metadata (paper §III-C DROP).
func (h *Handler) Drop(desc *metastore.TableDesc) error {
	if h.e.FS.Exists(desc.Location) {
		if err := h.e.FS.Delete(desc.Location, true); err != nil {
			return err
		}
	}
	if h.e.KV.HasTable(attachedName(desc)) {
		if err := h.e.KV.DropTable(attachedName(desc)); err != nil {
			return err
		}
	}
	return h.meta.DeleteRow([]byte(strings.ToLower(desc.Name)), nil)
}

// attached returns the table's attached kv table.
func (h *Handler) attached(desc *metastore.TableDesc) (*kvstore.Table, error) {
	return h.e.KV.Table(attachedName(desc))
}

// nextFileID allocates one incremental file ID from the system
// metadata table (paper §V-B: "we maintain an incremental integer
// file ID for each DualTable in the system wide metadata table").
func (h *Handler) nextFileID(desc *metastore.TableDesc, m *sim.Meter) (uint32, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	row := []byte(strings.ToLower(desc.Name))
	cells, err := h.meta.Get(row, m)
	if err != nil {
		return 0, err
	}
	next := uint32(1)
	for _, c := range cells {
		if string(c.Qualifier) == "nextfile" {
			var v uint64
			fmt.Sscanf(string(c.Value), "%d", &v)
			next = uint32(v)
			break // cells are newest-version-first
		}
	}
	err = h.meta.PutRow(row, attachedFamily,
		map[string][]byte{"nextfile": []byte(fmt.Sprintf("%d", next+1))}, m)
	if err != nil {
		return 0, err
	}
	return next, nil
}

// masterFile describes one master ORC file.
type masterFile struct {
	path   string
	size   int64
	fileID uint32
	rows   int64
	reader *orcfile.Reader
}

// masterFiles opens the footers of all master files.
func (h *Handler) masterFiles(desc *metastore.TableDesc) ([]masterFile, error) {
	infos, err := h.e.FS.ListFiles(masterDir(desc))
	if err != nil {
		return nil, err
	}
	var out []masterFile
	for _, fi := range infos {
		if strings.HasPrefix(fi.Name, ".") {
			continue
		}
		fr, err := h.e.FS.Open(fi.Path)
		if err != nil {
			return nil, err
		}
		rd, err := orcfile.Open(fr, fr.Size())
		if err != nil {
			fr.Close()
			return nil, fmt.Errorf("core: open master file %s: %w", fi.Path, err)
		}
		var fid uint64
		if _, err := fmt.Sscanf(rd.UserMeta()[fileIDMetaKey], "%d", &fid); err != nil {
			fr.Close()
			return nil, fmt.Errorf("core: master file %s has no file ID", fi.Path)
		}
		fr.Close()
		out = append(out, masterFile{path: fi.Path, size: fi.Size, fileID: uint32(fid), rows: rd.NumRows(), reader: rd})
	}
	return out, nil
}

// Splits returns UNION READ splits: one per master file, each merging
// the ORC rows with the attached table's modifications for that
// file's record ID range (paper §III-C UNION READ, §V-B).
func (h *Handler) Splits(desc *metastore.TableDesc, opts ScanOptions) ([]mapred.InputSplit, error) {
	lock := h.tableLock(desc.Name)
	lock.RLock()
	defer lock.RUnlock()
	return h.splitsLocked(desc, opts)
}

// splitsLocked builds splits without acquiring the table lock; the
// caller must hold it (shared) already. Avoids re-entrant RLock,
// which can deadlock when a COMPACT is waiting for the write lock.
func (h *Handler) splitsLocked(desc *metastore.TableDesc, opts ScanOptions) ([]mapred.InputSplit, error) {
	files, err := h.masterFiles(desc)
	if err != nil {
		return nil, err
	}
	att, err := h.attached(desc)
	if err != nil {
		return nil, err
	}
	var splits []mapred.InputSplit
	for _, f := range files {
		splits = append(splits, &unionReadSplit{
			h:      h,
			desc:   desc,
			file:   f,
			att:    att,
			opts:   opts,
			schema: desc.Schema,
		})
	}
	return splits, nil
}

// ScanOptions aliases hive.ScanOptions (same package shape).
type ScanOptions = hive.ScanOptions

// RowCount sums master file row counts (visible rows may be fewer if
// delete markers exist; the cost model wants the master size).
func (h *Handler) RowCount(desc *metastore.TableDesc) (int64, error) {
	files, err := h.masterFiles(desc)
	if err != nil {
		return 0, err
	}
	var total int64
	for _, f := range files {
		total += f.rows
	}
	return total, nil
}

// DataSize returns the master table byte size (D in the cost model).
func (h *Handler) DataSize(desc *metastore.TableDesc) (int64, error) {
	return h.e.FS.Du(masterDir(desc))
}

// AttachedEntryCount returns the number of cells in the attached
// table (UNION READ overhead indicator; COMPACT trigger input).
func (h *Handler) AttachedEntryCount(desc *metastore.TableDesc) (int64, error) {
	att, err := h.attached(desc)
	if err != nil {
		return 0, err
	}
	return att.EntryCount(), nil
}

// Append returns a factory writing new master files, each with a
// freshly allocated file ID (paper §III-C LOAD/INSERT: "data are
// loaded and inserted into the Master Table").
func (h *Handler) Append(desc *metastore.TableDesc) (mapred.OutputFactory, hive.Committer, error) {
	lock := h.tableLock(desc.Name)
	lock.RLock()
	return &masterOutputFactory{h: h, desc: desc, dir: masterDir(desc)},
		unlockCommitter{unlock: lock.RUnlock}, nil
}

// Overwrite writes a new master into staging and, on commit, swaps it
// in and clears the attached table — the OVERWRITE plan's storage
// semantics (§III-C: "replace the existing Master Table and Attached
// Table with a newly generated Master Table and an empty Attached
// Table").
func (h *Handler) Overwrite(desc *metastore.TableDesc) (mapred.OutputFactory, hive.Committer, error) {
	lock := h.tableLock(desc.Name)
	lock.RLock()
	staging := path.Join(desc.Location, ".staging")
	if h.e.FS.Exists(staging) {
		if err := h.e.FS.Delete(staging, true); err != nil {
			lock.RUnlock()
			return nil, nil, err
		}
	}
	if err := h.e.FS.MkdirAll(staging); err != nil {
		lock.RUnlock()
		return nil, nil, err
	}
	factory := &masterOutputFactory{h: h, desc: desc, dir: staging}
	return factory, &dualOverwriteCommitter{h: h, desc: desc, staging: staging, unlock: lock.RUnlock}, nil
}

type unlockCommitter struct{ unlock func() }

func (c unlockCommitter) Commit() error { c.unlock(); return nil }
func (c unlockCommitter) Abort() error  { c.unlock(); return nil }

// dualOverwriteCommitter swaps staged master files in and truncates
// the attached table.
type dualOverwriteCommitter struct {
	h       *Handler
	desc    *metastore.TableDesc
	staging string
	unlock  func()
}

func (c *dualOverwriteCommitter) Commit() error {
	defer c.unlock()
	fs := c.h.e.FS
	dir := masterDir(c.desc)
	infos, err := fs.ListFiles(dir)
	if err != nil {
		return err
	}
	for _, fi := range infos {
		if err := fs.Delete(fi.Path, false); err != nil {
			return err
		}
	}
	staged, err := fs.ListFiles(c.staging)
	if err != nil {
		return err
	}
	for _, fi := range staged {
		if err := fs.Rename(fi.Path, path.Join(dir, fi.Name)); err != nil {
			return err
		}
	}
	if err := fs.Delete(c.staging, true); err != nil {
		return err
	}
	return c.h.e.KV.TruncateTable(attachedName(c.desc))
}

func (c *dualOverwriteCommitter) Abort() error {
	defer c.unlock()
	if c.h.e.FS.Exists(c.staging) {
		return c.h.e.FS.Delete(c.staging, true)
	}
	return nil
}

// masterOutputFactory writes ORC master files with allocated file IDs.
type masterOutputFactory struct {
	h    *Handler
	desc *metastore.TableDesc
	dir  string
}

func (f *masterOutputFactory) NewCollector(taskID int, m *sim.Meter) (mapred.Collector, error) {
	return &masterCollector{f: f, taskID: taskID, meter: m}, nil
}

type masterCollector struct {
	f      *masterOutputFactory
	taskID int
	meter  *sim.Meter
	fw     *dfs.FileWriter
	w      *orcfile.Writer
}

func (c *masterCollector) Collect(row datum.Row) error {
	if c.w == nil {
		fid, err := c.f.h.nextFileID(c.f.desc, c.meter)
		if err != nil {
			return err
		}
		name := fmt.Sprintf("m-%08d.orc", fid)
		fw, err := c.f.h.e.FS.CreateMeter(path.Join(c.f.dir, name), c.meter)
		if err != nil {
			return err
		}
		fw.SetFileID(uint64(fid))
		fw.SetUserMeta(fileIDMetaKey, fmt.Sprintf("%d", fid))
		w, err := orcfile.NewWriter(fw, c.f.desc.Schema, orcfile.WriterOptions{
			Compression: true,
			UserMeta:    map[string]string{fileIDMetaKey: fmt.Sprintf("%d", fid)},
		})
		if err != nil {
			return err
		}
		c.fw, c.w = fw, w
	}
	return c.w.WriteRow(row)
}

func (c *masterCollector) Close() error {
	if c.w == nil {
		return nil
	}
	if err := c.w.Close(); err != nil {
		return err
	}
	return c.fw.Close()
}
