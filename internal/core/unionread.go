package core

import (
	"errors"
	"fmt"
	"io"
	"strconv"

	"dualtable/internal/datum"
	"dualtable/internal/kvstore"
	"dualtable/internal/mapred"
	"dualtable/internal/orcfile"
	"dualtable/internal/sim"
)

// unionReadSplit merges one master ORC file with the attached table's
// modifications for that file's record ID range. Both sides are
// sorted by record ID — the master because IDs are fileID<<32|rowNum
// with ascending row numbers, the attached table because its row keys
// are the big-endian IDs — so the merge is a single linear pass, as
// §V-B describes ("it only needs to read through and merge two sorted
// ID lists").
//
// The entries arrive pre-materialized from the snapshot the scan
// pinned (snapshot.go): they were read once at snapshot open,
// filtered to the epoch's attached-table watermark, and bucketed per
// file. That buys four things: predicate pushdown is disabled per
// file instead of per table (one dirty file no longer turns off
// stripe pruning for every clean file), the merge needs no scanner
// lookahead, the batch read path can classify a whole batch as clean
// with two comparisons against the sorted entry list — and scan tasks
// never touch the key-value store, so a concurrent COMPACT truncating
// the attached table cannot perturb a scan already open.
type unionReadSplit struct {
	h       *Handler
	file    masterFile
	entries []attEntry
	// attSeconds is the simulated cost of this file's attached
	// pre-scan, measured at snapshot open and charged to the task
	// meter at Open (the task "performs" the read it got the results
	// of).
	attSeconds float64
	opts       ScanOptions
	schema     datum.Schema
}

func (s *unionReadSplit) Length() int64 { return s.file.size }

// attEntry is one attached-table row (modification set) for a record.
type attEntry struct {
	rid   RecordID
	cells []kvstore.Cell
}

func (s *unionReadSplit) Open(m *sim.Meter) (mapred.RecordReader, error) {
	fr, err := s.h.e.FS.OpenMeter(s.file.path, m)
	if err != nil {
		return nil, err
	}
	rd, err := orcfile.Open(fr, fr.Size())
	if err != nil {
		fr.Close()
		return nil, err
	}
	m.AddSeconds(s.attSeconds)
	// Predicate pushdown note: a stripe may be pruned by stats even
	// though an attached update would make one of its rows match.
	// Pushdown therefore only applies to files with no attached
	// modifications — a per-file fact known from the snapshot's
	// materialized entry buckets.
	sarg := s.opts.SArg
	if sarg != nil && len(s.entries) > 0 {
		sarg = nil
	}
	return &unionReadReader{
		fr: fr,
		rd: rd,
		opts: orcfile.RowReaderOptions{
			Columns:   s.opts.Projection,
			SearchArg: sarg,
		},
		entries: s.entries,
		fileID:  s.file.fileID,
		schema:  s.schema,
		meter:   m,
	}, nil
}

// unionReadReader implements the merge. It serves records either row
// at a time (Next) or in vectorized batches (NextBatch); the MapReduce
// engine picks one mode per task and never mixes them, so the ORC-side
// machinery is created lazily for whichever mode runs.
type unionReadReader struct {
	fr      interface{ Close() error }
	rd      *orcfile.Reader
	opts    orcfile.RowReaderOptions
	rows    *orcfile.RowReader   // row mode, lazy
	batch   *orcfile.BatchReader // batch mode, lazy
	entries []attEntry
	attIdx  int
	fileID  uint32
	meter   *sim.Meter

	schema datum.Schema
	// mergedRows counts rows passed through the merge; the per-row
	// UNION READ overhead is charged in one batch at Close so the hot
	// loop performs no meter call per record (simulated seconds are
	// n·cost either way).
	mergedRows int64

	// batch-mode reusable buffers.
	cols    []datum.ColumnVector
	rowsBuf []datum.Row
	arena   datum.Row
	ids     []uint64
}

func (r *unionReadReader) Next() (datum.Row, mapred.RecordMeta, error) {
	if r.rows == nil {
		r.rows = r.rd.NewRowReader(r.opts)
	}
	for {
		row, ord, err := r.rows.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil, mapred.RecordMeta{}, mapred.EOF
			}
			return nil, mapred.RecordMeta{}, err
		}
		// Per-row merge bookkeeping (the paper's Fig. 4 "function
		// invocation" overhead, present even with an empty attached
		// table); charged in batch at Close.
		r.mergedRows++
		rid := NewRecordID(r.fileID, uint32(ord))
		// Skip attached IDs below the master row (orphans from aborted
		// writes).
		for r.attIdx < len(r.entries) && r.entries[r.attIdx].rid < rid {
			r.attIdx++
		}
		meta := mapred.RecordMeta{RecordID: uint64(rid)}
		if r.attIdx >= len(r.entries) || r.entries[r.attIdx].rid != rid {
			return row, meta, nil
		}
		// Merge the modifications in place. The ORC reader hands out a
		// reused row buffer that is refilled on the next call, so
		// writing the updated cells into it is safe and saves a clone
		// per dirty row; every column the query evaluates is part of
		// the projection, so a write to a non-projected column cannot
		// leak into later rows' visible output.
		deleted, err := mergeCells(row, r.entries[r.attIdx].cells)
		if err != nil {
			return nil, meta, fmt.Errorf("core: decode attached cell %s: %w", rid, err)
		}
		r.attIdx++
		if deleted {
			continue // row is deleted; skip to the next master row
		}
		return row, meta, nil
	}
}

// mergeCells applies one attached entry's cells to row in place,
// reporting whether the record carries a delete marker.
func mergeCells(row datum.Row, cells []kvstore.Cell) (deleted bool, err error) {
	for i := range cells {
		q := string(cells[i].Qualifier)
		if q == deleteQualifier {
			return true, nil
		}
		idx, aerr := strconv.Atoi(q)
		if aerr != nil || idx < 0 || idx >= len(row) {
			continue
		}
		d, _, derr := datum.DecodeDatum(cells[i].Value)
		if derr != nil {
			return false, derr
		}
		row[idx] = d
	}
	return false, nil
}

// NextBatch decodes the next column-vector batch and classifies it
// against the attached entries. Batches whose ID range contains no
// entries pass through untouched (the delta-sparse fast path: no
// per-row merge bookkeeping, record IDs are base+offset). Batches with
// update entries get the changed cells scattered into the vectors in
// place; only batches with delete markers (or a cell whose kind the
// vector cannot hold) fall back to materialized rows.
func (r *unionReadReader) NextBatch(b *mapred.RecordBatch) error {
	if r.batch == nil {
		r.batch = r.rd.NewBatchReader(r.opts)
		r.cols = make([]datum.ColumnVector, len(r.schema))
	}
	n, base, err := r.batch.NextBatch(r.cols, 0)
	if err != nil {
		if errors.Is(err, io.EOF) {
			return mapred.EOF
		}
		return err
	}
	r.mergedRows += int64(n)
	baseRid := NewRecordID(r.fileID, uint32(base))
	endRid := baseRid + RecordID(n)
	// Skip orphan entries below the batch, then collect the overlap.
	for r.attIdx < len(r.entries) && r.entries[r.attIdx].rid < baseRid {
		r.attIdx++
	}
	lo := r.attIdx
	for r.attIdx < len(r.entries) && r.entries[r.attIdx].rid < endRid {
		r.attIdx++
	}
	overlap := r.entries[lo:r.attIdx]

	b.Len = n
	b.Cols = r.cols
	b.Rows = nil
	b.BaseID = uint64(baseRid)
	b.IDs = nil
	if len(overlap) == 0 {
		return nil // clean batch: pure pass-through
	}
	// Dirty batch: try the in-place scatter merge first.
	for _, e := range overlap {
		slot := int(e.rid - baseRid)
		for i := range e.cells {
			q := string(e.cells[i].Qualifier)
			if q == deleteQualifier {
				return r.materializeBatch(b, n, baseRid, overlap)
			}
			idx, aerr := strconv.Atoi(q)
			if aerr != nil || idx < 0 || idx >= len(r.cols) {
				continue
			}
			d, _, derr := datum.DecodeDatum(e.cells[i].Value)
			if derr != nil {
				return fmt.Errorf("core: decode attached cell %s: %w", e.rid, derr)
			}
			if !r.cols[idx].SetDatum(slot, d) {
				return r.materializeBatch(b, n, baseRid, overlap)
			}
		}
	}
	return nil
}

// materializeBatch handles delete markers (and scatter misfits): the
// batch is rebuilt as rows with explicit record IDs, deleted records
// dropped — the same per-row path the row-mode merge takes. Updates
// already scattered into the vectors before the fallback are harmless:
// rows are re-materialized from the vectors and the remaining cells
// re-applied idempotently.
func (r *unionReadReader) materializeBatch(b *mapred.RecordBatch, n int, baseRid RecordID, overlap []attEntry) error {
	if cap(r.rowsBuf) < n {
		r.rowsBuf = make([]datum.Row, n)
	}
	if cap(r.ids) < n {
		r.ids = make([]uint64, n)
	}
	ncols := len(r.cols)
	if cap(r.arena) < n*ncols {
		r.arena = make(datum.Row, n*ncols)
	}
	rows := r.rowsBuf[:0]
	ids := r.ids[:0]
	k := 0
	for i := 0; i < n; i++ {
		rid := baseRid + RecordID(i)
		for k < len(overlap) && overlap[k].rid < rid {
			k++
		}
		row := r.arena[i*ncols : (i+1)*ncols : (i+1)*ncols]
		for c := 0; c < ncols; c++ {
			row[c] = r.cols[c].Datum(i)
		}
		if k < len(overlap) && overlap[k].rid == rid {
			deleted, err := mergeCells(row, overlap[k].cells)
			if err != nil {
				return fmt.Errorf("core: decode attached cell %s: %w", rid, err)
			}
			k++
			if deleted {
				continue
			}
		}
		rows = append(rows, row)
		ids = append(ids, uint64(rid))
	}
	b.Len = len(rows)
	b.Cols = nil
	b.Rows = rows
	b.IDs = ids
	return nil
}

func (r *unionReadReader) Close() error {
	r.meter.UnionReadRows(r.mergedRows)
	r.mergedRows = 0
	return r.fr.Close()
}
