package core

import (
	"fmt"
	"strconv"

	"dualtable/internal/datum"
	"dualtable/internal/kvstore"
	"dualtable/internal/mapred"
	"dualtable/internal/metastore"
	"dualtable/internal/orcfile"
	"dualtable/internal/sim"
)

// unionReadSplit merges one master ORC file with the attached table's
// modifications for that file's record ID range. Both sides are
// sorted by record ID — the master because IDs are fileID<<32|rowNum
// with ascending row numbers, the attached table because its row keys
// are the big-endian IDs — so the merge is a single linear pass, as
// §V-B describes ("it only needs to read through and merge two sorted
// ID lists").
type unionReadSplit struct {
	h      *Handler
	desc   *metastore.TableDesc
	file   masterFile
	att    *kvstore.Table
	opts   ScanOptions
	schema datum.Schema
}

func (s *unionReadSplit) Length() int64 { return s.file.size }

func (s *unionReadSplit) Open(m *sim.Meter) (mapred.RecordReader, error) {
	fr, err := s.h.e.FS.OpenMeter(s.file.path, m)
	if err != nil {
		return nil, err
	}
	rd, err := orcfile.Open(fr, fr.Size())
	if err != nil {
		fr.Close()
		return nil, err
	}
	// Predicate pushdown note: a stripe may be pruned by stats even
	// though the attached table holds an update that would make a row
	// match. Pushdown therefore only applies when the attached table
	// holds no updates for this table (common case: freshly
	// compacted); otherwise we scan everything and filter after
	// merging.
	sarg := s.opts.SArg
	if sarg != nil && s.att.EntryCount() > 0 {
		sarg = nil
	}
	rr := rd.NewRowReader(orcfile.RowReaderOptions{
		Columns:   s.opts.Projection,
		SearchArg: sarg,
	})
	start, end := FileRange(s.file.fileID)
	att := s.att.NewRowScanner(kvstore.Scan{Start: start, End: end, Meter: m})
	return &unionReadReader{
		fr:     fr,
		rows:   rr,
		att:    att,
		fileID: s.file.fileID,
		schema: s.schema,
		meter:  m,
	}, nil
}

// unionReadReader implements the merge.
type unionReadReader struct {
	fr     interface{ Close() error }
	rows   *orcfile.RowReader
	att    *kvstore.RowScanner
	fileID uint32
	meter  *sim.Meter

	schema datum.Schema
	// pending attached row (lookahead).
	attRow  kvstore.RowResult
	attID   RecordID
	haveAtt bool
	attDone bool
	// mergedRows counts rows passed through the merge; the per-row
	// UNION READ overhead is charged in one batch at Close so the hot
	// loop performs no meter call per record (simulated seconds are
	// n·cost either way).
	mergedRows int64
}

// nextAtt advances the attached lookahead.
func (r *unionReadReader) nextAtt() {
	if r.attDone {
		r.haveAtt = false
		return
	}
	res, ok := r.att.Next()
	if !ok {
		r.attDone = true
		r.haveAtt = false
		return
	}
	id, err := RecordIDFromKey(res.Row)
	if err != nil {
		// Malformed key: skip (cannot happen with our writers).
		r.nextAtt()
		return
	}
	r.attRow = res
	r.attID = id
	r.haveAtt = true
}

func (r *unionReadReader) Next() (datum.Row, mapred.RecordMeta, error) {
	if !r.haveAtt && !r.attDone {
		r.nextAtt()
	}
	for {
		row, ord, err := r.rows.Next()
		if err != nil {
			return nil, mapred.RecordMeta{}, mapred.EOF
		}
		// Per-row merge bookkeeping (the paper's Fig. 4 "function
		// invocation" overhead, present even with an empty attached
		// table); charged in batch at Close.
		r.mergedRows++
		rid := NewRecordID(r.fileID, uint32(ord))
		// Advance attached side past any IDs below the master row
		// (orphans from aborted writes are skipped).
		for r.haveAtt && r.attID < rid {
			r.nextAtt()
		}
		meta := mapred.RecordMeta{RecordID: uint64(rid)}
		if !r.haveAtt || r.attID != rid {
			return row, meta, nil
		}
		// Merge the modifications in place. The ORC reader hands out a
		// reused row buffer that is refilled on the next call, so
		// writing the updated cells into it is safe and saves a clone
		// per dirty row; every column the query evaluates is part of
		// the projection, so a write to a non-projected column cannot
		// leak into later rows' visible output.
		deleted := false
		merged := row
		for _, cell := range r.attRow.Cells {
			q := string(cell.Qualifier)
			if q == deleteQualifier {
				deleted = true
				break
			}
			idx, err := strconv.Atoi(q)
			if err != nil || idx < 0 || idx >= len(merged) {
				continue
			}
			d, _, err := datum.DecodeDatum(cell.Value)
			if err != nil {
				return nil, meta, fmt.Errorf("core: decode attached cell %s: %w", rid, err)
			}
			merged[idx] = d
		}
		r.nextAtt()
		if deleted {
			continue // row is deleted; skip to the next master row
		}
		return merged, meta, nil
	}
}

func (r *unionReadReader) Close() error {
	r.meter.UnionReadRows(r.mergedRows)
	r.mergedRows = 0
	r.att.Close()
	return r.fr.Close()
}
