package core

import (
	"context"
	"errors"
	"sort"
	"strings"
	"testing"
	"time"

	"dualtable/internal/dfs"
	"dualtable/internal/hive"
)

// fastCleanup shrinks the cleanup backoff for the duration of a test.
func fastCleanup(t *testing.T) {
	t.Helper()
	oldBackoff := cleanupBackoff
	cleanupBackoff = 100 * time.Microsecond
	t.Cleanup(func() { cleanupBackoff = oldBackoff })
}

// masterDirFiles lists the table's master directory (empty on absent).
func masterDirFiles(t *testing.T, e *hive.Engine, table string) map[string]bool {
	t.Helper()
	desc, err := e.MS.Get(table)
	if err != nil {
		t.Fatal(err)
	}
	out := map[string]bool{}
	infos, err := e.FS.ListFiles(masterDir(desc))
	if errors.Is(err, dfs.ErrNotFound) {
		return out
	}
	if err != nil {
		t.Fatal(err)
	}
	for _, fi := range infos {
		out[fi.Path] = true
	}
	return out
}

// assertNoOrphans fails unless the master directory holds exactly the
// files of the manifests still in history (current + retained).
func assertNoOrphans(t *testing.T, e *hive.Engine, table string) {
	t.Helper()
	legit, ok := e.MS.ManifestHistoryFiles(table)
	if !ok {
		t.Fatalf("%s has no manifest chain", table)
	}
	for p := range masterDirFiles(t, e, table) {
		if !legit[p] {
			t.Errorf("orphan master file leaked: %s", p)
		}
	}
}

// TestCompactAbortReclaimsStagedFiles cancels a COMPACT between stage
// and publish: the staged files must be reclaimed, the epoch
// unchanged, and a follow-up COMPACT must succeed.
func TestCompactAbortReclaimsStagedFiles(t *testing.T) {
	e, h := testEngine(t)
	seedDual(t, e)
	e.MS.SetRetentionEpochs("m", 0)
	h.SetForcePlan("EDIT")
	mustExec(t, e, "UPDATE m SET v = 1.5 WHERE day < 4")
	desc, _ := e.MS.Get("m")
	epochBefore, err := h.CurrentEpoch(desc)
	if err != nil {
		t.Fatal(err)
	}
	before := masterDirFiles(t, e, "m")
	ref := runUnionScan(t, e, h, "m", ScanOptions{}, 4, false)

	// Cancel between stage (rewrite job done) and publish.
	ctx, cancel := context.WithCancel(context.Background())
	h.SetCompactStagedHook(func(string) { cancel() })
	t.Cleanup(func() { h.SetCompactStagedHook(nil) })
	_, err = e.ExecuteCtx(&hive.ExecContext{Ctx: ctx}, "COMPACT TABLE m")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled COMPACT: want context.Canceled, got %v", err)
	}
	h.SetCompactStagedHook(nil)

	if epoch, _ := h.CurrentEpoch(desc); epoch != epochBefore {
		t.Fatalf("aborted COMPACT moved the epoch: %d -> %d", epochBefore, epoch)
	}
	after := masterDirFiles(t, e, "m")
	if len(after) != len(before) {
		t.Fatalf("aborted COMPACT leaked staged files: %d before, %d after", len(before), len(after))
	}
	for p := range after {
		if !before[p] {
			t.Errorf("staged file survived the abort: %s", p)
		}
	}
	if got := h.CondemnedPaths(); len(got) != 0 {
		t.Fatalf("clean abort left condemned paths: %v", got)
	}

	// The follow-up COMPACT succeeds and preserves the data.
	mustExec(t, e, "COMPACT TABLE m")
	got := runUnionScan(t, e, h, "m", ScanOptions{}, 4, false)
	assertSameScanRows(t, "post-abort COMPACT", ref, got)
	assertNoOrphans(t, e, "m")
}

// TestAbortCleanupRetriesTransientFaults injects transient delete
// faults under the abort path: the bounded-backoff retry must still
// reclaim every staged file.
func TestAbortCleanupRetriesTransientFaults(t *testing.T) {
	fastCleanup(t)
	e, h := testEngine(t)
	seedDual(t, e)
	e.MS.SetRetentionEpochs("m", 0)
	before := masterDirFiles(t, e, "m")

	ctx, cancel := context.WithCancel(context.Background())
	h.SetCompactStagedHook(func(string) {
		// Fail the first two deletes of every staged file's reclaim.
		e.FS.SetFaultInjector(dfs.NewScheduleInjector(
			dfs.FaultRule{Op: dfs.OpDelete, PathContains: "/warehouse/m/", Times: 2},
		))
		cancel()
	})
	t.Cleanup(func() {
		h.SetCompactStagedHook(nil)
		e.FS.SetFaultInjector(nil)
	})
	_, err := e.ExecuteCtx(&hive.ExecContext{Ctx: ctx}, "COMPACT TABLE m")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled COMPACT: want context.Canceled, got %v", err)
	}
	e.FS.SetFaultInjector(nil)

	after := masterDirFiles(t, e, "m")
	for p := range after {
		if !before[p] {
			t.Errorf("staged file survived a retried abort: %s", p)
		}
	}
	if got := h.CondemnedPaths(); len(got) != 0 {
		t.Fatalf("transient faults should not condemn: %v", got)
	}
}

// TestAbortCleanupCondemnsOnPersistentFault exhausts the cleanup
// retries: the staged files must land in the condemned ledger and be
// reclaimed by the recovery scan once the fault clears.
func TestAbortCleanupCondemnsOnPersistentFault(t *testing.T) {
	fastCleanup(t)
	e, h := testEngine(t)
	seedDual(t, e)
	e.MS.SetRetentionEpochs("m", 0)
	before := masterDirFiles(t, e, "m")

	ctx, cancel := context.WithCancel(context.Background())
	h.SetCompactStagedHook(func(string) {
		e.FS.SetFaultInjector(dfs.NewScheduleInjector(
			dfs.FaultRule{Op: dfs.OpDelete, PathContains: "/warehouse/m/", Times: 1 << 20},
		))
		cancel()
	})
	t.Cleanup(func() {
		h.SetCompactStagedHook(nil)
		e.FS.SetFaultInjector(nil)
	})
	_, err := e.ExecuteCtx(&hive.ExecContext{Ctx: ctx}, "COMPACT TABLE m")
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled COMPACT: want context.Canceled, got %v", err)
	}

	condemned := h.CondemnedPaths()
	if len(condemned) == 0 {
		t.Fatal("persistent delete faults must condemn the staged files")
	}
	staged := masterDirFiles(t, e, "m")
	for p := range before {
		delete(staged, p)
	}
	if len(staged) == 0 {
		t.Fatal("expected staged files to survive while condemned")
	}

	// Fault clears; the recovery scan re-drives the condemned cleanup.
	e.FS.SetFaultInjector(nil)
	recovered, err := h.RecoverOrphans()
	if err != nil {
		t.Fatalf("RecoverOrphans: %v", err)
	}
	if len(recovered) == 0 {
		t.Fatal("recovery scan reported no orphans")
	}
	if got := h.CondemnedPaths(); len(got) != 0 {
		t.Fatalf("recovery left condemned paths: %v", got)
	}
	assertNoOrphans(t, e, "m")
	for p := range staged {
		if e.FS.Exists(p) {
			t.Errorf("condemned staged file survived recovery: %s", p)
		}
	}
}

// TestTornWriteDuringInsertAborts tears a write mid-INSERT: the
// statement fails, the torn file (left with an abandoned lease) is
// reclaimed via lease recovery, and a follow-up INSERT succeeds.
func TestTornWriteDuringInsertAborts(t *testing.T) {
	fastCleanup(t)
	e, h := testEngine(t)
	seedDual(t, e)
	e.MS.SetRetentionEpochs("m", 0)
	before := masterDirFiles(t, e, "m")
	ref := runUnionScan(t, e, h, "m", ScanOptions{}, 4, false)

	e.FS.SetFaultInjector(dfs.NewScheduleInjector(
		dfs.FaultRule{Op: dfs.OpWrite, PathContains: "/warehouse/m/", TearBytes: 7},
	))
	t.Cleanup(func() { e.FS.SetFaultInjector(nil) })
	if _, err := e.Execute("INSERT INTO m VALUES (9001, 1, 1.5, 'torn')"); err == nil {
		t.Fatal("INSERT over a torn write should fail")
	}
	e.FS.SetFaultInjector(nil)

	after := masterDirFiles(t, e, "m")
	for p := range after {
		if !before[p] {
			t.Errorf("torn staged file survived the abort: %s", p)
		}
	}
	got := runUnionScan(t, e, h, "m", ScanOptions{}, 4, false)
	assertSameScanRows(t, "post-torn-write scan", ref, got)

	mustExec(t, e, "INSERT INTO m VALUES (9002, 1, 2.5, 'ok')")
	got = runUnionScan(t, e, h, "m", ScanOptions{}, 4, false)
	if len(got.rows) != len(ref.rows)+1 {
		t.Fatalf("follow-up INSERT: %d rows, want %d", len(got.rows), len(ref.rows)+1)
	}
	assertNoOrphans(t, e, "m")
}

// TestRecoverOrphansSweepsUnpublished plants unpublished files in the
// master directory — one sealed, one with an abandoned write lease —
// and expects the recovery scan to reclaim exactly those.
func TestRecoverOrphansSweepsUnpublished(t *testing.T) {
	fastCleanup(t)
	e, h := testEngine(t)
	seedDual(t, e)
	desc, _ := e.MS.Get("m")
	dir := masterDir(desc)

	sealed := dir + "/m-90000001.orc"
	if err := e.FS.WriteFile(sealed, []byte("staged but never published")); err != nil {
		t.Fatal(err)
	}
	torn := dir + "/m-90000002.orc"
	w, err := e.FS.Create(torn)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("partial")); err != nil {
		t.Fatal(err)
	}
	// Never closed: a crashed writer's abandoned lease.

	recovered, err := h.RecoverOrphans()
	if err != nil {
		t.Fatalf("RecoverOrphans: %v", err)
	}
	want := map[string]bool{sealed: true, torn: true}
	if len(recovered) != 2 || !want[recovered[0]] || !want[recovered[1]] {
		t.Fatalf("recovered %v, want %s and %s", recovered, sealed, torn)
	}
	if e.FS.Exists(sealed) || e.FS.Exists(torn) {
		t.Fatal("orphans survived the recovery scan")
	}
	// Legit files are untouched and the table still reads.
	assertNoOrphans(t, e, "m")
	if got := runUnionScan(t, e, h, "m", ScanOptions{}, 4, false); len(got.rows) != 360 {
		t.Fatalf("post-recovery scan: %d rows, want 360", len(got.rows))
	}

	// Idempotent: a second scan finds nothing.
	recovered, err = h.RecoverOrphans()
	if err != nil || len(recovered) != 0 {
		t.Fatalf("second RecoverOrphans = %v, %v; want empty, nil", recovered, err)
	}
}

// TestUnpinFaultDoesNotLeakPins injects transient unpin faults at
// snapshot release: the retried delivery must bring every pin back to
// zero so deferred deletion is never stranded.
func TestUnpinFaultDoesNotLeakPins(t *testing.T) {
	fastCleanup(t)
	e, h := testEngine(t)
	seedDual(t, e)
	e.MS.SetRetentionEpochs("m", 0)
	desc, _ := e.MS.Get("m")

	snap, err := h.OpenSnapshot(desc)
	if err != nil {
		t.Fatal(err)
	}
	pinned := snap.Files()
	if len(pinned) == 0 {
		t.Fatal("snapshot pinned no files")
	}
	e.FS.SetFaultInjector(dfs.NewScheduleInjector(
		dfs.FaultRule{Op: dfs.OpUnpin, PathContains: "/warehouse/m/", Times: 3},
	))
	t.Cleanup(func() { e.FS.SetFaultInjector(nil) })
	snap.Release()
	e.FS.SetFaultInjector(nil)

	for _, p := range pinned {
		if n := e.FS.Pins(p); n != 0 {
			t.Errorf("pin leaked on %s: %d", p, n)
		}
	}
}

// assertSameScanRows compares the data columns of two scans as sets,
// dropping the trailing record ID the scan helper appends (a COMPACT
// legitimately reassigns file IDs, and hence record IDs).
func assertSameScanRows(t *testing.T, label string, want, got scanResult) {
	t.Helper()
	if len(want.rows) != len(got.rows) {
		t.Fatalf("%s: %d rows, want %d", label, len(got.rows), len(want.rows))
	}
	stripID := func(rows []string) []string {
		out := make([]string, len(rows))
		for i, r := range rows {
			if j := strings.LastIndexByte(r, '\t'); j >= 0 {
				r = r[:j]
			}
			out[i] = r
		}
		return out
	}
	w, g := stripID(want.rows), stripID(got.rows)
	sort.Strings(w)
	sort.Strings(g)
	for i := range w {
		if w[i] != g[i] {
			t.Fatalf("%s: row %d = %q, want %q", label, i, g[i], w[i])
		}
	}
}
