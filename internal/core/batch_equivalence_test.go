package core

import (
	"fmt"
	"strings"
	"testing"

	"dualtable/internal/datum"
	"dualtable/internal/hive"
	"dualtable/internal/mapred"
	"dualtable/internal/sqlparser"
)

// scanResult captures everything the equivalence contract covers:
// output rows (rendered), job counters and simulated seconds.
type scanResult struct {
	rows    []string
	counts  mapred.Counters
	simSecs float64
}

// runUnionScan executes one identity map-only job over a table's
// UNION READ splits under the given parallelism and scan mode.
func runUnionScan(t *testing.T, e *hive.Engine, h *Handler, table string, opts ScanOptions, workers int, disableBatch bool) scanResult {
	t.Helper()
	desc, err := e.MS.Get(table)
	if err != nil {
		t.Fatal(err)
	}
	splits, err := h.Splits(desc, opts)
	if err != nil {
		t.Fatal(err)
	}
	mr := mapred.NewCluster(e.MR.Params)
	mr.Parallelism = workers
	mr.DisableBatchScan = disableBatch
	job := &mapred.Job{
		Name:   "equivalence-scan",
		Splits: splits,
		NewMapper: func() mapred.Mapper {
			return mapred.MapFunc(func(row datum.Row, meta mapred.RecordMeta, emit mapred.Emitter) error {
				out := row.Clone()
				out = append(out, datum.Int(int64(meta.RecordID)))
				return emit(nil, out)
			})
		},
	}
	res, err := mr.Run(job)
	if err != nil {
		t.Fatal(err)
	}
	out := scanResult{counts: res.Counters, simSecs: res.SimSeconds}
	for _, r := range res.Rows {
		out.rows = append(out.rows, r.String())
	}
	return out
}

// assertSameScan compares two scan results byte for byte.
func assertSameScan(t *testing.T, label string, want, got scanResult) {
	t.Helper()
	if len(want.rows) != len(got.rows) {
		t.Fatalf("%s: row count %d != %d", label, len(got.rows), len(want.rows))
	}
	for i := range want.rows {
		if want.rows[i] != got.rows[i] {
			t.Fatalf("%s: row %d:\n got %q\nwant %q", label, i, got.rows[i], want.rows[i])
		}
	}
	if want.counts != got.counts {
		t.Fatalf("%s: counters %+v != %+v", label, got.counts, want.counts)
	}
	if want.simSecs != got.simSecs {
		t.Fatalf("%s: sim seconds %v != %v", label, got.simSecs, want.simSecs)
	}
}

// TestBatchRowScanEquivalence checks that the vectorized batch scan
// and the row-at-a-time scan return byte-identical rows (including
// record IDs), Counters and SimSeconds over clean, updated and
// deleted-row tables — master files are flate-compressed by the
// DualTable writer — across 1 and N workers.
func TestBatchRowScanEquivalence(t *testing.T) {
	e, h := testEngine(t)
	h.SetForcePlan("EDIT")
	mustExec(t, e, "CREATE TABLE eq (id BIGINT, grp BIGINT, v DOUBLE, tag STRING) STORED AS DUALTABLE")
	// Two master files so per-file classification matters.
	for f := 0; f < 2; f++ {
		var sb strings.Builder
		sb.WriteString("INSERT INTO eq VALUES ")
		for i := 0; i < 500; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			id := f*500 + i
			if id%97 == 0 {
				fmt.Fprintf(&sb, "(%d, %d, NULL, NULL)", id, id%10)
			} else {
				fmt.Fprintf(&sb, "(%d, %d, %d.25, 'tag%d')", id, id%10, id, id%3)
			}
		}
		mustExec(t, e, sb.String())
	}

	stages := []struct {
		name string
		sql  string
	}{
		{"clean", ""},
		{"updated", "UPDATE eq SET v = 9000.5, tag = 'dirty' WHERE grp = 3"},
		{"deleted", "DELETE FROM eq WHERE grp = 7"},
		{"updated-second-file", "UPDATE eq SET v = 1.5 WHERE id >= 700 AND id < 720"},
	}
	scans := []struct {
		name string
		opts ScanOptions
	}{
		{"full", ScanOptions{}},
		{"projected", ScanOptions{Projection: []int{0, 2}}},
		{"pushdown", ScanOptions{SArg: hive.ExtractSearchArg(
			mustWhere(t, "SELECT * FROM eq WHERE id >= 800"), "eq", mustSchema(t, e, "eq"))}},
	}
	for _, stage := range stages {
		if stage.sql != "" {
			mustExec(t, e, stage.sql)
		}
		for _, sc := range scans {
			ref := runUnionScan(t, e, h, "eq", sc.opts, 1, true)
			if len(ref.rows) == 0 {
				t.Fatalf("%s/%s: reference scan returned no rows", stage.name, sc.name)
			}
			for _, workers := range []int{1, 4} {
				for _, disable := range []bool{true, false} {
					label := fmt.Sprintf("%s/%s workers=%d batch=%v", stage.name, sc.name, workers, !disable)
					assertSameScan(t, label, ref, runUnionScan(t, e, h, "eq", sc.opts, workers, disable))
				}
			}
		}
	}
}

// TestBatchRowSQLEquivalence runs full SQL statements (aggregation and
// filter+project, the two mapper kinds) on batch and row paths and
// compares results and simulated seconds.
func TestBatchRowSQLEquivalence(t *testing.T) {
	e, h := testEngine(t)
	h.SetForcePlan("EDIT")
	seedDual(t, e)
	mustExec(t, e, "UPDATE m SET v = 0.5 WHERE day < 3")
	mustExec(t, e, "DELETE FROM m WHERE day = 9")
	queries := []string{
		"SELECT COUNT(*), SUM(v), MIN(tag), MAX(id) FROM m",
		"SELECT day, COUNT(*), AVG(v) FROM m GROUP BY day ORDER BY day",
		"SELECT id, v FROM m WHERE id >= 100 AND id < 140 ORDER BY id",
		"SELECT tag, COUNT(DISTINCT day) FROM m GROUP BY tag ORDER BY tag",
	}
	for _, q := range queries {
		e.MR.DisableBatchScan = true
		want, err := e.Execute(q)
		if err != nil {
			t.Fatalf("%s (row): %v", q, err)
		}
		e.MR.DisableBatchScan = false
		got, err := e.Execute(q)
		if err != nil {
			t.Fatalf("%s (batch): %v", q, err)
		}
		if len(want.Rows) == 0 {
			t.Fatalf("%s: no rows", q)
		}
		if len(want.Rows) != len(got.Rows) {
			t.Fatalf("%s: %d rows != %d rows", q, len(got.Rows), len(want.Rows))
		}
		for i := range want.Rows {
			if want.Rows[i].String() != got.Rows[i].String() {
				t.Fatalf("%s row %d: %s != %s", q, i, got.Rows[i], want.Rows[i])
			}
		}
		if want.SimSeconds != got.SimSeconds {
			t.Fatalf("%s: sim seconds %v != %v", q, got.SimSeconds, want.SimSeconds)
		}
	}
}

// mustWhere extracts the WHERE expression of a SELECT text.
func mustWhere(t *testing.T, sql string) sqlparser.Expr {
	t.Helper()
	stmt, err := sqlparser.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := stmt.(*sqlparser.SelectStmt)
	if !ok || sel.Where == nil {
		t.Fatalf("not a SELECT with WHERE: %s", sql)
	}
	return sel.Where
}

func mustSchema(t *testing.T, e *hive.Engine, table string) datum.Schema {
	t.Helper()
	desc, err := e.MS.Get(table)
	if err != nil {
		t.Fatal(err)
	}
	return desc.Schema
}
