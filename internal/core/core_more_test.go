package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"dualtable/internal/metastore"
	"dualtable/internal/orcfile"
)

// Second-round coverage: locking, pushdown interaction with the
// attached table, statistics estimation, and edge cases.

func TestCompactBlocksConcurrentDML(t *testing.T) {
	e, h := testEngine(t)
	seedDual(t, e)
	h.SetForcePlan("EDIT")
	desc, _ := e.MS.Get("m")

	// Hold the compact (exclusive) lock manually and verify DML
	// blocks until released — the paper: "all the other operations
	// will be blocked during COMPACT".
	lock := h.tableLock(desc.Name)
	lock.Lock()
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		close(started)
		_, err := e.Execute("UPDATE m SET v = 1.0 WHERE id = 1")
		done <- err
	}()
	<-started
	select {
	case <-done:
		t.Fatal("UPDATE completed while compact lock held")
	case <-time.After(50 * time.Millisecond):
	}
	lock.Unlock()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("update after unlock: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("update never completed after unlock")
	}
}

func TestPushdownDisabledWithDirtyAttached(t *testing.T) {
	// Predicate pushdown must not prune stripes whose rows were
	// updated into matching: with a dirty attached table, stripe
	// stats are stale, so pushdown is skipped.
	e, h := testEngine(t)
	mustExec(t, e, "CREATE TABLE p (id BIGINT, v BIGINT) STORED AS DUALTABLE")
	var sb strings.Builder
	sb.WriteString("INSERT INTO p VALUES ")
	for i := 0; i < 5000; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d)", i, i)
	}
	mustExec(t, e, sb.String())
	h.SetForcePlan("EDIT")
	// Make one low-id row match a high-v predicate via the attached
	// table.
	mustExec(t, e, "UPDATE p SET v = 1000000 WHERE id = 3")
	rs := mustExec(t, e, "SELECT COUNT(*) FROM p WHERE v >= 1000000")
	if rs.Rows[0][0].I != 1 {
		t.Errorf("pushdown dropped an attached-table update: %v", rs.Rows[0])
	}
	// After COMPACT the stats are fresh and the row must still match.
	mustExec(t, e, "COMPACT TABLE p")
	rs = mustExec(t, e, "SELECT COUNT(*) FROM p WHERE v >= 1000000")
	if rs.Rows[0][0].I != 1 {
		t.Errorf("post-compact pushdown lost the row: %v", rs.Rows[0])
	}
}

func TestStatsSelectivityEstimate(t *testing.T) {
	e, h := testEngine(t)
	seedDual(t, e) // 360 rows, day = i%36
	desc, _ := e.MS.Get("m")
	files, err := h.masterFiles(desc)
	if err != nil {
		t.Fatal(err)
	}
	// WHERE day = 50 matches nothing: stripe stats prove it.
	stmt := "UPDATE m SET v = 0.0 WHERE day = 500"
	parsed := mustParseUpdate(t, stmt)
	est := h.statsSelectivity(desc, files, parsed.Where, "m")
	if est != 0 {
		t.Errorf("impossible predicate estimate = %v, want 0", est)
	}
	// WHERE with no pushable conjuncts yields no estimate (-1).
	parsed = mustParseUpdate(t, "UPDATE m SET v = 0.0 WHERE v * 2 > day")
	est = h.statsSelectivity(desc, files, parsed.Where, "m")
	if est != -1 {
		t.Errorf("non-pushable estimate = %v, want -1", est)
	}
	// No WHERE = ratio 1.
	est = h.statsSelectivity(desc, files, nil, "m")
	if est != 1 {
		t.Errorf("whereless estimate = %v, want 1", est)
	}
}

func TestAttachedTableGrowsAndCompactClears(t *testing.T) {
	e, h := testEngine(t)
	seedDual(t, e)
	h.SetForcePlan("EDIT")
	desc, _ := e.MS.Get("m")
	var prev int64
	for i := 0; i < 3; i++ {
		mustExec(t, e, fmt.Sprintf("UPDATE m SET v = %d.0 WHERE day = %d", i, i))
		n, _ := h.AttachedEntryCount(desc)
		if n <= prev {
			t.Fatalf("attached table did not grow: %d -> %d", prev, n)
		}
		prev = n
	}
	mustExec(t, e, "COMPACT TABLE m")
	if n, _ := h.AttachedEntryCount(desc); n != 0 {
		t.Errorf("attached after compact = %d", n)
	}
}

func TestNoOpUpdateWritesNothing(t *testing.T) {
	// Setting a column to its current value is elided (no attached
	// cells, zero affected).
	e, h := testEngine(t)
	seedDual(t, e)
	h.SetForcePlan("EDIT")
	rs := mustExec(t, e, "UPDATE m SET day = day WHERE id < 100")
	if rs.Affected != 0 {
		t.Errorf("no-op update affected = %d", rs.Affected)
	}
	desc, _ := e.MS.Get("m")
	if n, _ := h.AttachedEntryCount(desc); n != 0 {
		t.Errorf("no-op update wrote %d cells", n)
	}
}

func TestUpdateToNullViaEdit(t *testing.T) {
	e, h := testEngine(t)
	seedDual(t, e)
	h.SetForcePlan("EDIT")
	mustExec(t, e, "UPDATE m SET tag = NULL WHERE id = 11")
	rs := mustExec(t, e, "SELECT COUNT(*) FROM m WHERE tag IS NULL")
	if rs.Rows[0][0].I != 1 {
		t.Errorf("null update = %v", rs.Rows[0])
	}
}

func TestManyMasterFilesUnionRead(t *testing.T) {
	e, h := testEngine(t)
	mustExec(t, e, "CREATE TABLE mm (id BIGINT, v BIGINT) STORED AS DUALTABLE")
	// Five separate inserts → five master files with distinct IDs.
	for f := 0; f < 5; f++ {
		var sb strings.Builder
		sb.WriteString("INSERT INTO mm VALUES ")
		for i := 0; i < 20; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d)", f*20+i, f)
		}
		mustExec(t, e, sb.String())
	}
	desc, _ := e.MS.Get("mm")
	files, _ := h.masterFiles(desc)
	if len(files) != 5 {
		t.Fatalf("master files = %d", len(files))
	}
	h.SetForcePlan("EDIT")
	// Update rows spanning several files.
	mustExec(t, e, "UPDATE mm SET v = 99 WHERE id % 20 = 7")
	rs := mustExec(t, e, "SELECT COUNT(*) FROM mm WHERE v = 99")
	if rs.Rows[0][0].I != 5 {
		t.Errorf("cross-file update = %v", rs.Rows[0])
	}
	// Delete across files, then compact down to fresh files.
	mustExec(t, e, "DELETE FROM mm WHERE id % 20 = 3")
	mustExec(t, e, "COMPACT TABLE mm")
	rs = mustExec(t, e, "SELECT COUNT(*) FROM mm")
	if rs.Rows[0][0].I != 95 {
		t.Errorf("after compact = %v", rs.Rows[0])
	}
}

func TestConcurrentReadsDuringEdit(t *testing.T) {
	e, h := testEngine(t)
	seedDual(t, e)
	h.SetForcePlan("EDIT")
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				if _, err := e.Execute("SELECT COUNT(*) FROM m"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.Execute(fmt.Sprintf("UPDATE m SET v = %d.5 WHERE day = %d", i, i)); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestMasterFileMissingIDRejected(t *testing.T) {
	e, h := testEngine(t)
	mustExec(t, e, "CREATE TABLE bad (id BIGINT) STORED AS DUALTABLE")
	mustExec(t, e, "INSERT INTO bad VALUES (1)")
	desc, _ := e.MS.Get("bad")
	// Drop a rogue ORC file without the file ID into the master dir.
	w, err := e.FS.Create(masterDir(desc) + "/rogue.orc")
	if err != nil {
		t.Fatal(err)
	}
	ow, err := orcfile.NewWriter(w, desc.Schema, orcfile.WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ow.Close()
	w.Close()
	if _, err := h.masterFiles(desc); err == nil {
		t.Error("master file without a file ID must be rejected")
	}
}

func TestDescribeDualTable(t *testing.T) {
	e, _ := testEngine(t)
	seedDual(t, e)
	rs := mustExec(t, e, "DESCRIBE m")
	found := false
	for _, r := range rs.Rows {
		if strings.Contains(r.String(), "DUALTABLE") {
			found = true
		}
	}
	if !found {
		t.Errorf("describe should name the storage: %v", rs.Rows)
	}
}

func mustParseUpdate(t *testing.T, sql string) *updateStmtWrapper {
	t.Helper()
	stmt, err := parseUpdate(sql)
	if err != nil {
		t.Fatal(err)
	}
	return stmt
}

// Small indirection to keep the sqlparser import local to this file's
// helper.
type updateStmtWrapper = updateAlias

func TestFollowingReadsProperty(t *testing.T) {
	e, h := testEngine(t)
	seedDual(t, e)
	// Table property overrides the handler default.
	if err := e.MS.SetProperty("m", "dualtable.k", "25"); err != nil {
		t.Fatal(err)
	}
	desc, _ := e.MS.Get("m")
	w, _, err := h.workloadFor(nil, desc, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w.FollowingReads != 25 {
		t.Errorf("k from property = %v", w.FollowingReads)
	}
	_ = metastore.StorageDual
}
