package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"dualtable/internal/datum"
	"dualtable/internal/hive"
	"dualtable/internal/mapred"
	"dualtable/internal/metastore"
	"dualtable/internal/orcfile"
)

// Second-round coverage: locking, pushdown interaction with the
// attached table, statistics estimation, and edge cases.

// runPinnedScan executes one identity map-only job over pre-built
// pinned splits with the given parallelism, returning an error
// instead of failing the test (safe from worker goroutines).
func runPinnedScan(e *hive.Engine, splits []mapred.InputSplit, workers int) (scanResult, error) {
	mr := mapred.NewCluster(e.MR.Params)
	mr.Parallelism = workers
	job := &mapred.Job{
		Name:   "mvcc-scan",
		Splits: splits,
		NewMapper: func() mapred.Mapper {
			return mapred.MapFunc(func(row datum.Row, meta mapred.RecordMeta, emit mapred.Emitter) error {
				out := row.Clone()
				out = append(out, datum.Int(int64(meta.RecordID)))
				return emit(nil, out)
			})
		},
	}
	res, err := mr.Run(job)
	if err != nil {
		return scanResult{}, err
	}
	out := scanResult{counts: res.Counters, simSecs: res.SimSeconds}
	for _, r := range res.Rows {
		out.rows = append(out.rows, r.String())
	}
	return out, nil
}

// TestCompactDoesNotBlockScans is the MVCC flip side of the old
// "COMPACT blocks everything" contract: a COMPACT held mid-flight
// (staged but not yet published) must not block concurrent scans —
// each scan pins the pre-compaction epoch and returns rows, Counters
// and SimSeconds byte-identical to a solo scan of that epoch — while
// concurrent *writers* still block until the compaction finishes. A
// scan pinned before the epoch swap completes after it, against the
// superseded files deferred deletion kept alive.
func TestCompactDoesNotBlockScans(t *testing.T) {
	e, h := testEngine(t)
	seedDual(t, e)
	// Retention off: this test asserts superseded masters are reclaimed
	// exactly when the last scan pin drops; the pin-last-N-epochs
	// time-travel window (covered by TestTimeTravel*) would keep them.
	e.MS.SetRetentionEpochs("m", 0)
	h.SetForcePlan("EDIT")
	mustExec(t, e, "UPDATE m SET v = 9999.5 WHERE day < 6")
	mustExec(t, e, "DELETE FROM m WHERE day = 7")
	desc, _ := e.MS.Get("m")
	epochBefore, err := h.CurrentEpoch(desc)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: a solo scan of the pre-compaction epoch.
	ref := runUnionScan(t, e, h, "m", ScanOptions{}, 4, false)
	if len(ref.rows) == 0 {
		t.Fatal("reference scan returned no rows")
	}
	manBefore, err := e.MS.CurrentManifest("m")
	if err != nil {
		t.Fatal(err)
	}

	// Gate the compaction between stage (rewrite job done) and
	// publish (epoch swap).
	staged := make(chan struct{})
	releaseGate := make(chan struct{})
	h.SetCompactStagedHook(func(string) { close(staged); <-releaseGate })
	t.Cleanup(func() { h.SetCompactStagedHook(nil) })
	compactDone := make(chan error, 1)
	go func() {
		_, err := e.Execute("COMPACT TABLE m")
		compactDone <- err
	}()
	<-staged

	// A writer issued mid-COMPACT must block until the compaction
	// releases the writer lock (the paper's blocking contract, now
	// scoped to writers only).
	dmlDone := make(chan error, 1)
	go func() {
		_, err := e.Execute("UPDATE m SET v = 1.0 WHERE id = 1")
		dmlDone <- err
	}()

	// One scan pins the pre-compaction epoch now and runs only after
	// the epoch swap: deferred deletion must keep its files alive.
	pinnedSplits, releasePin, err := h.PinnedSplits(desc, ScanOptions{})
	if err != nil {
		t.Fatal(err)
	}

	// Four workers scan mid-COMPACT; all must run to completion while
	// the compaction is still in flight — no scan blocked on the
	// table lock.
	const scanners = 4
	results := make([]scanResult, scanners)
	errs := make([]error, scanners)
	var wg sync.WaitGroup
	for i := 0; i < scanners; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			splits, release, err := h.PinnedSplits(desc, ScanOptions{})
			if err != nil {
				errs[i] = err
				return
			}
			defer release()
			results[i], errs[i] = runPinnedScan(e, splits, 4)
		}()
	}
	wg.Wait()
	select {
	case err := <-compactDone:
		t.Fatalf("compaction published before the gate opened: %v", err)
	case err := <-dmlDone:
		t.Fatalf("writer did not block on in-flight COMPACT: %v", err)
	default:
	}
	for i := 0; i < scanners; i++ {
		if errs[i] != nil {
			t.Fatalf("mid-compact scan %d: %v", i, errs[i])
		}
		assertSameScan(t, fmt.Sprintf("mid-compact scan %d", i), ref, results[i])
	}

	// Open the gate: the compaction publishes, the blocked writer
	// proceeds.
	close(releaseGate)
	if err := <-compactDone; err != nil {
		t.Fatalf("compact: %v", err)
	}
	if err := <-dmlDone; err != nil {
		t.Fatalf("update after compact: %v", err)
	}

	// The pre-swap pinned scan still reads its epoch byte-identically
	// — superseded masters survive until the pin drops.
	late, err := runPinnedScan(e, pinnedSplits, 4)
	if err != nil {
		t.Fatalf("post-swap pinned scan: %v", err)
	}
	assertSameScan(t, "post-swap pinned scan", ref, late)
	for _, f := range manBefore.Files {
		if !e.FS.Exists(f.Path) {
			t.Errorf("superseded master %s removed while still pinned", f.Path)
		}
	}
	releasePin()
	// The last pin dropped: deferred deletion reclaims every
	// superseded master — no leak.
	for _, f := range manBefore.Files {
		if e.FS.Exists(f.Path) {
			t.Errorf("superseded master %s leaked after last pin dropped", f.Path)
		}
		if n := e.FS.Pins(f.Path); n != 0 {
			t.Errorf("superseded master %s still has %d pins", f.Path, n)
		}
	}

	// Epoch advanced; attached table cleared up to the post-compact
	// UPDATE's single re-applied cell; row content preserved.
	epochAfter, err := h.CurrentEpoch(desc)
	if err != nil {
		t.Fatal(err)
	}
	if epochAfter <= epochBefore {
		t.Errorf("epoch did not advance: %d -> %d", epochBefore, epochAfter)
	}
	rs := mustExec(t, e, "SELECT COUNT(*) FROM m WHERE v = 9999.5")
	want := mustExec(t, e, "SELECT COUNT(*) FROM m WHERE day < 6 AND id != 1")
	if rs.Rows[0][0].I != want.Rows[0][0].I {
		t.Errorf("post-compact content: %v updated rows, want %v", rs.Rows[0][0].I, want.Rows[0][0].I)
	}
}

func TestPushdownDisabledWithDirtyAttached(t *testing.T) {
	// Predicate pushdown must not prune stripes whose rows were
	// updated into matching: with a dirty attached table, stripe
	// stats are stale, so pushdown is skipped.
	e, h := testEngine(t)
	mustExec(t, e, "CREATE TABLE p (id BIGINT, v BIGINT) STORED AS DUALTABLE")
	var sb strings.Builder
	sb.WriteString("INSERT INTO p VALUES ")
	for i := 0; i < 5000; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d)", i, i)
	}
	mustExec(t, e, sb.String())
	h.SetForcePlan("EDIT")
	// Make one low-id row match a high-v predicate via the attached
	// table.
	mustExec(t, e, "UPDATE p SET v = 1000000 WHERE id = 3")
	rs := mustExec(t, e, "SELECT COUNT(*) FROM p WHERE v >= 1000000")
	if rs.Rows[0][0].I != 1 {
		t.Errorf("pushdown dropped an attached-table update: %v", rs.Rows[0])
	}
	// After COMPACT the stats are fresh and the row must still match.
	mustExec(t, e, "COMPACT TABLE p")
	rs = mustExec(t, e, "SELECT COUNT(*) FROM p WHERE v >= 1000000")
	if rs.Rows[0][0].I != 1 {
		t.Errorf("post-compact pushdown lost the row: %v", rs.Rows[0])
	}
}

func TestStatsSelectivityEstimate(t *testing.T) {
	e, h := testEngine(t)
	seedDual(t, e) // 360 rows, day = i%36
	desc, _ := e.MS.Get("m")
	files, err := h.masterFiles(desc)
	if err != nil {
		t.Fatal(err)
	}
	// WHERE day = 50 matches nothing: stripe stats prove it.
	stmt := "UPDATE m SET v = 0.0 WHERE day = 500"
	parsed := mustParseUpdate(t, stmt)
	est := h.statsSelectivity(desc, files, parsed.Where, "m")
	if est != 0 {
		t.Errorf("impossible predicate estimate = %v, want 0", est)
	}
	// WHERE with no pushable conjuncts yields no estimate (-1).
	parsed = mustParseUpdate(t, "UPDATE m SET v = 0.0 WHERE v * 2 > day")
	est = h.statsSelectivity(desc, files, parsed.Where, "m")
	if est != -1 {
		t.Errorf("non-pushable estimate = %v, want -1", est)
	}
	// No WHERE = ratio 1.
	est = h.statsSelectivity(desc, files, nil, "m")
	if est != 1 {
		t.Errorf("whereless estimate = %v, want 1", est)
	}
}

func TestAttachedTableGrowsAndCompactClears(t *testing.T) {
	e, h := testEngine(t)
	seedDual(t, e)
	h.SetForcePlan("EDIT")
	desc, _ := e.MS.Get("m")
	var prev int64
	for i := 0; i < 3; i++ {
		mustExec(t, e, fmt.Sprintf("UPDATE m SET v = %d.0 WHERE day = %d", i, i))
		n, _ := h.AttachedEntryCount(desc)
		if n <= prev {
			t.Fatalf("attached table did not grow: %d -> %d", prev, n)
		}
		prev = n
	}
	mustExec(t, e, "COMPACT TABLE m")
	if n, _ := h.AttachedEntryCount(desc); n != 0 {
		t.Errorf("attached after compact = %d", n)
	}
}

func TestNoOpUpdateWritesNothing(t *testing.T) {
	// Setting a column to its current value is elided (no attached
	// cells, zero affected).
	e, h := testEngine(t)
	seedDual(t, e)
	h.SetForcePlan("EDIT")
	rs := mustExec(t, e, "UPDATE m SET day = day WHERE id < 100")
	if rs.Affected != 0 {
		t.Errorf("no-op update affected = %d", rs.Affected)
	}
	desc, _ := e.MS.Get("m")
	if n, _ := h.AttachedEntryCount(desc); n != 0 {
		t.Errorf("no-op update wrote %d cells", n)
	}
}

func TestUpdateToNullViaEdit(t *testing.T) {
	e, h := testEngine(t)
	seedDual(t, e)
	h.SetForcePlan("EDIT")
	mustExec(t, e, "UPDATE m SET tag = NULL WHERE id = 11")
	rs := mustExec(t, e, "SELECT COUNT(*) FROM m WHERE tag IS NULL")
	if rs.Rows[0][0].I != 1 {
		t.Errorf("null update = %v", rs.Rows[0])
	}
}

func TestManyMasterFilesUnionRead(t *testing.T) {
	e, h := testEngine(t)
	mustExec(t, e, "CREATE TABLE mm (id BIGINT, v BIGINT) STORED AS DUALTABLE")
	// Five separate inserts → five master files with distinct IDs.
	for f := 0; f < 5; f++ {
		var sb strings.Builder
		sb.WriteString("INSERT INTO mm VALUES ")
		for i := 0; i < 20; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d)", f*20+i, f)
		}
		mustExec(t, e, sb.String())
	}
	desc, _ := e.MS.Get("mm")
	files, _ := h.masterFiles(desc)
	if len(files) != 5 {
		t.Fatalf("master files = %d", len(files))
	}
	h.SetForcePlan("EDIT")
	// Update rows spanning several files.
	mustExec(t, e, "UPDATE mm SET v = 99 WHERE id % 20 = 7")
	rs := mustExec(t, e, "SELECT COUNT(*) FROM mm WHERE v = 99")
	if rs.Rows[0][0].I != 5 {
		t.Errorf("cross-file update = %v", rs.Rows[0])
	}
	// Delete across files, then compact down to fresh files.
	mustExec(t, e, "DELETE FROM mm WHERE id % 20 = 3")
	mustExec(t, e, "COMPACT TABLE mm")
	rs = mustExec(t, e, "SELECT COUNT(*) FROM mm")
	if rs.Rows[0][0].I != 95 {
		t.Errorf("after compact = %v", rs.Rows[0])
	}
}

func TestConcurrentReadsDuringEdit(t *testing.T) {
	e, h := testEngine(t)
	seedDual(t, e)
	h.SetForcePlan("EDIT")
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				if _, err := e.Execute("SELECT COUNT(*) FROM m"); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	for i := 0; i < 2; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := e.Execute(fmt.Sprintf("UPDATE m SET v = %d.5 WHERE day = %d", i, i)); err != nil {
				errs <- err
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestMasterFileMissingIDRejected(t *testing.T) {
	e, h := testEngine(t)
	mustExec(t, e, "CREATE TABLE bad (id BIGINT) STORED AS DUALTABLE")
	mustExec(t, e, "INSERT INTO bad VALUES (1)")
	desc, _ := e.MS.Get("bad")
	// Drop a rogue ORC file without the file ID into the master dir.
	w, err := e.FS.Create(masterDir(desc) + "/rogue.orc")
	if err != nil {
		t.Fatal(err)
	}
	ow, err := orcfile.NewWriter(w, desc.Schema, orcfile.WriterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ow.Close()
	w.Close()
	if _, err := h.masterFiles(desc); err == nil {
		t.Error("master file without a file ID must be rejected")
	}
}

func TestDescribeDualTable(t *testing.T) {
	e, _ := testEngine(t)
	seedDual(t, e)
	rs := mustExec(t, e, "DESCRIBE m")
	found := false
	for _, r := range rs.Rows {
		if strings.Contains(r.String(), "DUALTABLE") {
			found = true
		}
	}
	if !found {
		t.Errorf("describe should name the storage: %v", rs.Rows)
	}
}

func mustParseUpdate(t *testing.T, sql string) *updateStmtWrapper {
	t.Helper()
	stmt, err := parseUpdate(sql)
	if err != nil {
		t.Fatal(err)
	}
	return stmt
}

// Small indirection to keep the sqlparser import local to this file's
// helper.
type updateStmtWrapper = updateAlias

func TestFollowingReadsProperty(t *testing.T) {
	e, h := testEngine(t)
	seedDual(t, e)
	// Table property overrides the handler default.
	if err := e.MS.SetProperty("m", "dualtable.k", "25"); err != nil {
		t.Fatal(err)
	}
	desc, _ := e.MS.Get("m")
	w, _, err := h.workloadFor(nil, desc, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if w.FollowingReads != 25 {
		t.Errorf("k from property = %v", w.FollowingReads)
	}
	_ = metastore.StorageDual
}
