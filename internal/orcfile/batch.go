package orcfile

import (
	"fmt"
	"io"

	"dualtable/internal/datum"
)

// DefaultBatchRows is the row capacity a batch scan decodes per
// NextBatch call. ~1k rows amortizes per-call dispatch while keeping
// a batch's column vectors comfortably inside the L2 cache.
const DefaultBatchRows = 1024

// BatchReader decodes a file stripe-by-stripe into typed column
// vectors, the vectorized counterpart of RowReader. A batch never
// spans a stripe boundary, so the rows of one batch always carry
// consecutive file ordinals starting at the batch's base ordinal —
// the property DualTable's UNION READ fast path uses to classify a
// whole batch against the attached table with two comparisons.
//
// Batch and row readers share the stripe cursors and therefore decode
// byte-identical values; pruned stripes advance the ordinal exactly
// like RowReader.
type BatchReader struct {
	rd        *Reader
	opts      RowReaderOptions
	project   []bool
	stripeIdx int
	cols      []*columnCursor
	inStripe  int64
	stripeLen int64
	// rowOrdinal is the file ordinal of the next undecoded row.
	rowOrdinal int64

	// scratch buffers reused across batches.
	present []bool
	ints    []int64
	floats  []float64
	bools   []bool
}

// NewBatchReader starts a vectorized scan with the same options as
// NewRowReader.
func (rd *Reader) NewBatchReader(opts RowReaderOptions) *BatchReader {
	br := &BatchReader{rd: rd, opts: opts, project: make([]bool, len(rd.schema))}
	if opts.Columns == nil {
		for i := range br.project {
			br.project[i] = true
		}
	} else {
		for _, c := range opts.Columns {
			if c >= 0 && c < len(br.project) {
				br.project[c] = true
			}
		}
	}
	return br
}

// NextBatch decodes up to max rows (DefaultBatchRows when max <= 0)
// into cols, which must have one vector per schema column.
// Unprojected columns become all-NULL vectors, keeping column indexes
// stable like the row reader. It returns the number of rows decoded
// and the file ordinal of the batch's first row; io.EOF ends the scan.
func (br *BatchReader) NextBatch(cols []datum.ColumnVector, max int) (int, int64, error) {
	if len(cols) != len(br.rd.schema) {
		return 0, 0, fmt.Errorf("orcfile: batch arity %d, schema arity %d", len(cols), len(br.rd.schema))
	}
	if max <= 0 {
		max = DefaultBatchRows
	}
	for br.inStripe >= br.stripeLen {
		if br.stripeIdx >= len(br.rd.stripes) {
			return 0, 0, io.EOF
		}
		sm := br.rd.stripes[br.stripeIdx]
		if br.opts.SearchArg != nil && !br.opts.SearchArg.MaybeMatches(sm.stats) {
			br.rowOrdinal += sm.rows
			br.stripeIdx++
			continue
		}
		cursors, err := br.rd.openStripeCursors(sm, br.project)
		if err != nil {
			return 0, 0, err
		}
		br.cols = cursors
		br.stripeIdx++
		br.inStripe = 0
		br.stripeLen = sm.rows
	}
	n := max
	if rem := int(br.stripeLen - br.inStripe); n > rem {
		n = rem
	}
	base := br.rowOrdinal
	for i, cur := range br.cols {
		if cur == nil {
			cols[i].Reset(datum.KindNull, n)
			continue
		}
		if err := br.fillVector(&cols[i], cur, n); err != nil {
			return 0, 0, fmt.Errorf("orcfile: column %s rows %d..%d: %w",
				br.rd.schema[i].Name, base, base+int64(n)-1, err)
		}
	}
	br.inStripe += int64(n)
	br.rowOrdinal += int64(n)
	return n, base, nil
}

// fillVector decodes n values of one column into v: presence bits in
// bulk, then the value stream in bulk — straight into the vector's
// positional slots when the batch has no NULLs, via a dense scratch
// buffer plus scatter otherwise.
func (br *BatchReader) fillVector(v *datum.ColumnVector, cur *columnCursor, n int) error {
	if cap(br.present) < n {
		br.present = make([]bool, n)
	}
	present := br.present[:n]
	if err := cur.presence.Fill(present); err != nil {
		return err
	}
	v.Reset(cur.kind, n)
	nonNull := 0
	for i, p := range present {
		if p {
			v.Nulls[i] = false
			nonNull++
		}
	}
	dense := nonNull == n
	switch cur.kind {
	case datum.KindInt:
		if dense {
			return cur.ints.Fill(v.Ints)
		}
		if err := cur.ints.Fill(br.scratchInts(nonNull)); err != nil {
			return err
		}
		k := 0
		for i, p := range present {
			if p {
				v.Ints[i] = br.ints[k]
				k++
			}
		}
	case datum.KindFloat:
		if dense {
			return cur.floats.Fill(v.Floats)
		}
		if cap(br.floats) < nonNull {
			br.floats = make([]float64, nonNull)
		}
		if err := cur.floats.Fill(br.floats[:nonNull]); err != nil {
			return err
		}
		k := 0
		for i, p := range present {
			if p {
				v.Floats[i] = br.floats[k]
				k++
			}
		}
	case datum.KindBool:
		if dense {
			return cur.bools.Fill(v.Bools)
		}
		if cap(br.bools) < nonNull {
			br.bools = make([]bool, nonNull)
		}
		if err := cur.bools.Fill(br.bools[:nonNull]); err != nil {
			return err
		}
		k := 0
		for i, p := range present {
			if p {
				v.Bools[i] = br.bools[k]
				k++
			}
		}
	case datum.KindString:
		return br.fillStrings(v, cur, present, nonNull)
	default:
		return fmt.Errorf("orcfile: bad cursor kind")
	}
	return nil
}

// fillStrings decodes n string slots: dictionary indexes map to shared
// dict entries (no per-value allocation); direct mode slices the blob
// and converts, exactly the bytes the row reader would produce.
func (br *BatchReader) fillStrings(v *datum.ColumnVector, cur *columnCursor, present []bool, nonNull int) error {
	vals := br.scratchInts(nonNull)
	if cur.dict != nil {
		if err := cur.indices.Fill(vals); err != nil {
			return err
		}
		k := 0
		for i, p := range present {
			if !p {
				continue
			}
			idx := vals[k]
			k++
			if idx < 0 || int(idx) >= len(cur.dict) {
				return fmt.Errorf("orcfile: dict index %d out of range", idx)
			}
			v.Strs[i] = cur.dict[idx]
		}
		return nil
	}
	if err := cur.lens.Fill(vals); err != nil {
		return err
	}
	k := 0
	for i, p := range present {
		if !p {
			continue
		}
		end := cur.blobOff + int(vals[k])
		k++
		if end > len(cur.blob) || end < cur.blobOff {
			return fmt.Errorf("orcfile: string blob exhausted")
		}
		v.Strs[i] = string(cur.blob[cur.blobOff:end])
		cur.blobOff = end
	}
	return nil
}

func (br *BatchReader) scratchInts(n int) []int64 {
	if cap(br.ints) < n {
		br.ints = make([]int64, n)
	}
	return br.ints[:n]
}
