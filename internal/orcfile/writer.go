package orcfile

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"dualtable/internal/datum"
)

// File layout:
//
//	[stripe 1] ... [stripe N]
//	[footer]        (optionally flate-compressed)
//	[tail: footerOff u64 | footerLen u64 | flags u64 | magic u64]
//
// Stripe layout: the concatenation of one stream per column, each
// stream independently compressed. Stream content:
//
//	presence bitmap (ceil(rows/8) bytes, bit set = non-null)
//	data section, type-specific:
//	  BIGINT  RLE ints
//	  DOUBLE  raw 8-byte LE
//	  BOOLEAN bit-packed
//	  STRING  0x00 direct:     lengths RLE, then concatenated bytes
//	          0x01 dictionary: dict size RLE-lens+bytes, indices RLE
const (
	orcMagic  = 0x4455414C4F524331 // "DUALORC1"
	tailSize  = 32
	flagFlate = 1 << 0
	// DefaultStripeRows is the writer's default stripe size in rows.
	DefaultStripeRows = 10000
	// dictionaryThreshold: use a dictionary when distinct/total <= 0.5.
	dictionaryThreshold = 0.5
)

// WriterOptions configures a Writer.
type WriterOptions struct {
	// StripeRows is the number of rows per stripe.
	StripeRows int
	// Compression enables flate compression of streams and footer.
	Compression bool
	// UserMeta is stored in the footer (e.g. the DualTable file ID).
	UserMeta map[string]string
}

// Writer streams rows into an ORC-like file. The destination only
// needs io.Writer (no seeking), so it can write straight to a DFS
// file.
type Writer struct {
	w      io.Writer
	schema datum.Schema
	opts   WriterOptions

	cols      []*columnBuilder
	rowsIn    int // rows in current stripe
	totalRows int64
	offset    uint64 // bytes written so far
	stripes   []stripeMeta
	fileStats []ColumnStats
	closed    bool
}

type stripeMeta struct {
	offset  uint64
	length  uint64
	rows    int64
	streams []streamMeta // per column
	stats   []ColumnStats
}

type streamMeta struct {
	relOff uint64
	length uint64
}

// columnBuilder accumulates one column's values for the current
// stripe.
type columnBuilder struct {
	kind     datum.Kind
	presence bitWriter
	ints     intEncoder
	floats   floatEncoder
	bools    bitWriter
	strs     []string
	stats    ColumnStats
}

// NewWriter creates a writer emitting rows of the given schema.
func NewWriter(w io.Writer, schema datum.Schema, opts WriterOptions) (*Writer, error) {
	if len(schema) == 0 {
		return nil, fmt.Errorf("orcfile: empty schema")
	}
	if opts.StripeRows <= 0 {
		opts.StripeRows = DefaultStripeRows
	}
	wr := &Writer{w: w, schema: schema.Clone(), opts: opts,
		fileStats: make([]ColumnStats, len(schema))}
	for _, c := range schema {
		wr.cols = append(wr.cols, &columnBuilder{kind: c.Kind})
	}
	return wr, nil
}

// Schema returns the writer's schema.
func (w *Writer) Schema() datum.Schema { return w.schema }

// WriteRow appends one row; datums must match the schema kinds (NULLs
// allowed anywhere).
func (w *Writer) WriteRow(row datum.Row) error {
	if w.closed {
		return fmt.Errorf("orcfile: writer closed")
	}
	if len(row) != len(w.schema) {
		return fmt.Errorf("orcfile: row arity %d, schema arity %d", len(row), len(w.schema))
	}
	for i, d := range row {
		cb := w.cols[i]
		if !d.IsNull() && d.K != cb.kind {
			return fmt.Errorf("orcfile: column %s expects %s, got %s", w.schema[i].Name, cb.kind, d.K)
		}
		cb.stats.Update(d)
		if d.IsNull() {
			cb.presence.Append(false)
			continue
		}
		cb.presence.Append(true)
		switch cb.kind {
		case datum.KindInt:
			cb.ints.Append(d.I)
		case datum.KindFloat:
			cb.floats.Append(d.F)
		case datum.KindBool:
			cb.bools.Append(d.B)
		case datum.KindString:
			cb.strs = append(cb.strs, d.S)
		}
	}
	w.rowsIn++
	w.totalRows++
	if w.rowsIn >= w.opts.StripeRows {
		return w.flushStripe()
	}
	return nil
}

// flushStripe encodes and writes the buffered stripe.
func (w *Writer) flushStripe() error {
	if w.rowsIn == 0 {
		return nil
	}
	sm := stripeMeta{offset: w.offset, rows: int64(w.rowsIn)}
	var rel uint64
	for i, cb := range w.cols {
		stream := cb.encodeStream()
		stream, err := w.maybeCompress(stream)
		if err != nil {
			return err
		}
		if _, err := w.w.Write(stream); err != nil {
			return err
		}
		sm.streams = append(sm.streams, streamMeta{relOff: rel, length: uint64(len(stream))})
		rel += uint64(len(stream))
		sm.stats = append(sm.stats, cb.stats)
		w.fileStats[i].Merge(cb.stats)
		cb.reset()
	}
	sm.length = rel
	w.offset += rel
	w.stripes = append(w.stripes, sm)
	w.rowsIn = 0
	return nil
}

// encodeStream builds the uncompressed column stream.
func (cb *columnBuilder) encodeStream() []byte {
	presence := cb.presence.Finish()
	out := binary.AppendUvarint(nil, uint64(len(presence)))
	out = append(out, presence...)
	switch cb.kind {
	case datum.KindInt:
		out = append(out, cb.ints.Finish()...)
	case datum.KindFloat:
		out = append(out, cb.floats.Finish()...)
	case datum.KindBool:
		out = append(out, cb.bools.Finish()...)
	case datum.KindString:
		out = appendStringSection(out, cb.strs)
	}
	return out
}

// appendStringSection chooses dictionary or direct encoding.
func appendStringSection(out []byte, strs []string) []byte {
	distinct := map[string]int{}
	for _, s := range strs {
		distinct[s] = 0
	}
	useDict := len(strs) > 0 && float64(len(distinct)) <= dictionaryThreshold*float64(len(strs))
	if !useDict {
		out = append(out, 0x00) // direct
		var lens intEncoder
		for _, s := range strs {
			lens.Append(int64(len(s)))
		}
		enc := lens.Finish()
		out = binary.AppendUvarint(out, uint64(len(enc)))
		out = append(out, enc...)
		for _, s := range strs {
			out = append(out, s...)
		}
		return out
	}
	// Dictionary: sorted for deterministic output and future range
	// optimizations.
	dict := make([]string, 0, len(distinct))
	for s := range distinct {
		dict = append(dict, s)
	}
	sort.Strings(dict)
	for i, s := range dict {
		distinct[s] = i
	}
	out = append(out, 0x01)
	out = binary.AppendUvarint(out, uint64(len(dict)))
	for _, s := range dict {
		out = appendBytesVal(out, s)
	}
	var idx intEncoder
	for _, s := range strs {
		idx.Append(int64(distinct[s]))
	}
	enc := idx.Finish()
	out = binary.AppendUvarint(out, uint64(len(enc)))
	return append(out, enc...)
}

func (cb *columnBuilder) reset() {
	cb.presence.Reset()
	cb.ints.Reset()
	cb.floats.Reset()
	cb.bools.Reset()
	cb.strs = cb.strs[:0]
	cb.stats = ColumnStats{}
}

func (w *Writer) maybeCompress(b []byte) ([]byte, error) {
	if !w.opts.Compression {
		return b, nil
	}
	var buf bytes.Buffer
	fw, err := flate.NewWriter(&buf, flate.BestSpeed)
	if err != nil {
		return nil, err
	}
	if _, err := fw.Write(b); err != nil {
		return nil, err
	}
	if err := fw.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Close flushes the final stripe and writes the footer and tail.
func (w *Writer) Close() error {
	if w.closed {
		return fmt.Errorf("orcfile: writer already closed")
	}
	if err := w.flushStripe(); err != nil {
		return err
	}
	w.closed = true

	footer := w.encodeFooter()
	footer, err := w.maybeCompress(footer)
	if err != nil {
		return err
	}
	footerOff := w.offset
	if _, err := w.w.Write(footer); err != nil {
		return err
	}
	var flags uint64
	if w.opts.Compression {
		flags |= flagFlate
	}
	var tail [tailSize]byte
	binary.LittleEndian.PutUint64(tail[0:], footerOff)
	binary.LittleEndian.PutUint64(tail[8:], uint64(len(footer)))
	binary.LittleEndian.PutUint64(tail[16:], flags)
	binary.LittleEndian.PutUint64(tail[24:], orcMagic)
	_, err = w.w.Write(tail[:])
	return err
}

// encodeFooter serializes schema, user metadata, stripe directory and
// file statistics.
func (w *Writer) encodeFooter() []byte {
	out := binary.AppendUvarint(nil, uint64(len(w.schema)))
	for _, c := range w.schema {
		out = appendBytesVal(out, c.Name)
		out = append(out, byte(c.Kind))
	}
	out = binary.AppendUvarint(out, uint64(len(w.opts.UserMeta)))
	keys := make([]string, 0, len(w.opts.UserMeta))
	for k := range w.opts.UserMeta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		out = appendBytesVal(out, k)
		out = appendBytesVal(out, w.opts.UserMeta[k])
	}
	out = binary.AppendUvarint(out, uint64(w.totalRows))
	out = binary.AppendUvarint(out, uint64(len(w.stripes)))
	for _, sm := range w.stripes {
		out = binary.AppendUvarint(out, sm.offset)
		out = binary.AppendUvarint(out, sm.length)
		out = binary.AppendUvarint(out, uint64(sm.rows))
		for _, st := range sm.streams {
			out = binary.AppendUvarint(out, st.relOff)
			out = binary.AppendUvarint(out, st.length)
		}
		for i := range sm.stats {
			out = sm.stats[i].marshal(out)
		}
	}
	for i := range w.fileStats {
		out = w.fileStats[i].marshal(out)
	}
	return out
}

// NumRows returns the rows written so far.
func (w *Writer) NumRows() int64 { return w.totalRows }
