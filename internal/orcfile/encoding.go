// Package orcfile implements a simplified ORC-like columnar file
// format: rows are buffered into stripes; within a stripe every column
// is stored as an independently compressed stream with a presence
// bitmap, a type-specific encoding (run-length for integers,
// dictionary or direct for strings, bit-packing for booleans), and
// per-stripe min/max/sum statistics that support predicate pushdown.
// The file footer records the schema, the stripe directory, file-level
// statistics, and user metadata — DualTable stores its master-table
// file ID there (paper §V-B), and the reader reports the row number of
// every row it returns, which is how DualTable derives record IDs at
// zero storage cost.
//
// Files can be scanned two ways. RowReader decodes one datum.Row per
// Next call. BatchReader decodes chunks of up to DefaultBatchRows rows
// into typed column vectors (datum.ColumnVector), expanding whole RLE
// groups per iteration instead of dispatching per value; a batch never
// spans a stripe boundary, so its rows carry consecutive file
// ordinals. Both readers share the stripe cursors, read the same
// streams and produce byte-identical values — the batch form is purely
// a cheaper delivery shape for vectorized execution.
package orcfile

import (
	"encoding/binary"
	"fmt"
	"math"
)

// intEncoder run-length encodes int64 values: repeats of length >= 3
// become a run, everything else is emitted as literal groups.
//
//	run:     0x00 uvarint(count-3) zigzag-varint(value)
//	literal: 0x01 uvarint(count)   count zigzag-varints
//	delta:   0x02 uvarint(count-3) zigzag(first) zigzag(delta)
//
// The delta form captures monotonic sequences (record IDs, dates)
// that dominate DualTable workloads.
type intEncoder struct {
	pending []int64
	out     []byte
}

const (
	rleRun     = 0x00
	rleLiteral = 0x01
	rleDelta   = 0x02
	minRunLen  = 3
)

// maxEncodeRun caps a single encoded run. A run that reaches the cap
// is emitted even when it might continue, which guarantees
// flushPending always makes progress (keeping Append amortized O(1)).
const maxEncodeRun = 1024

func (e *intEncoder) Append(v int64) {
	e.pending = append(e.pending, v)
	if len(e.pending) >= 2*maxEncodeRun {
		e.flushPending(false)
	}
}

// flushPending encodes the buffered values. When force is false a
// small tail is kept buffered to allow runs to continue.
func (e *intEncoder) flushPending(force bool) {
	vals := e.pending
	i := 0
	for i < len(vals) {
		// Try a constant run.
		j := i + 1
		for j < len(vals) && vals[j] == vals[i] {
			j++
		}
		if runLen := j - i; runLen >= minRunLen {
			if j == len(vals) && !force && runLen < maxEncodeRun {
				break // run may continue with future appends
			}
			if runLen > maxEncodeRun {
				runLen = maxEncodeRun
				j = i + runLen
			}
			e.out = append(e.out, rleRun)
			e.out = binary.AppendUvarint(e.out, uint64(runLen-minRunLen))
			e.out = appendZigzag(e.out, vals[i])
			i = j
			continue
		}
		// Try a delta run.
		j = i + 1
		if j < len(vals) {
			delta := vals[j] - vals[i]
			if delta != 0 {
				for j+1 < len(vals) && vals[j+1]-vals[j] == delta {
					j++
				}
				if runLen := j - i + 1; runLen >= minRunLen {
					if j == len(vals)-1 && !force && runLen < maxEncodeRun {
						break
					}
					if runLen > maxEncodeRun {
						runLen = maxEncodeRun
						j = i + runLen - 1
					}
					e.out = append(e.out, rleDelta)
					e.out = binary.AppendUvarint(e.out, uint64(runLen-minRunLen))
					e.out = appendZigzag(e.out, vals[i])
					e.out = appendZigzag(e.out, delta)
					i = j + 1
					continue
				}
			}
		}
		// Literal group: scan forward until a run starts.
		start := i
		i++
		for i < len(vals) {
			if i+minRunLen <= len(vals) {
				if vals[i] == vals[i+1] && vals[i] == vals[i+2] {
					break
				}
				d := vals[i+1] - vals[i]
				if d != 0 && i+2 < len(vals) && vals[i+2]-vals[i+1] == d {
					break
				}
			}
			i++
		}
		if i == len(vals) && !force && len(vals)-start < 512 {
			i = start
			break
		}
		e.out = append(e.out, rleLiteral)
		e.out = binary.AppendUvarint(e.out, uint64(i-start))
		for _, v := range vals[start:i] {
			e.out = appendZigzag(e.out, v)
		}
	}
	e.pending = append(e.pending[:0], vals[i:]...)
}

// Finish returns the complete encoding.
func (e *intEncoder) Finish() []byte {
	e.flushPending(true)
	return e.out
}

// Reset prepares the encoder for reuse.
func (e *intEncoder) Reset() {
	e.pending = e.pending[:0]
	e.out = e.out[:0]
}

func appendZigzag(dst []byte, v int64) []byte {
	return binary.AppendUvarint(dst, uint64(v<<1)^uint64(v>>63))
}

func decodeZigzag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}

// intDecoder streams values back out of an RLE buffer.
type intDecoder struct {
	buf []byte
	off int

	mode  byte
	left  uint64
	cur   int64
	delta int64
}

func newIntDecoder(buf []byte) *intDecoder { return &intDecoder{buf: buf} }

// loadGroup decodes the next RLE group header, leaving d.left > 0.
func (d *intDecoder) loadGroup() error {
	for d.left == 0 {
		if d.off >= len(d.buf) {
			return fmt.Errorf("orcfile: int stream exhausted")
		}
		mode := d.buf[d.off]
		d.off++
		n, c := binary.Uvarint(d.buf[d.off:])
		if c <= 0 {
			return fmt.Errorf("orcfile: bad RLE count")
		}
		d.off += c
		switch mode {
		case rleRun:
			v, c2 := binary.Uvarint(d.buf[d.off:])
			if c2 <= 0 {
				return fmt.Errorf("orcfile: bad RLE run value")
			}
			d.off += c2
			d.mode, d.left, d.cur = rleRun, n+minRunLen, decodeZigzag(v)
		case rleLiteral:
			if n == 0 {
				continue
			}
			d.mode, d.left = rleLiteral, n
		case rleDelta:
			first, c2 := binary.Uvarint(d.buf[d.off:])
			if c2 <= 0 {
				return fmt.Errorf("orcfile: bad delta first")
			}
			d.off += c2
			delta, c3 := binary.Uvarint(d.buf[d.off:])
			if c3 <= 0 {
				return fmt.Errorf("orcfile: bad delta step")
			}
			d.off += c3
			d.mode, d.left = rleDelta, n+minRunLen
			d.cur, d.delta = decodeZigzag(first), decodeZigzag(delta)
			// First value of a delta run is emitted as-is; mark so.
			d.cur -= d.delta
		}
	}
	return nil
}

func (d *intDecoder) Next() (int64, error) {
	if d.left == 0 {
		if err := d.loadGroup(); err != nil {
			return 0, err
		}
	}
	d.left--
	switch d.mode {
	case rleRun:
		return d.cur, nil
	case rleDelta:
		d.cur += d.delta
		return d.cur, nil
	default: // literal
		v, c := binary.Uvarint(d.buf[d.off:])
		if c <= 0 {
			return 0, fmt.Errorf("orcfile: bad literal value")
		}
		d.off += c
		return decodeZigzag(v), nil
	}
}

// Fill decodes len(dst) values, expanding whole RLE groups per
// iteration instead of paying the per-value group dispatch of Next —
// the batch read path's inner loop.
func (d *intDecoder) Fill(dst []int64) error {
	for len(dst) > 0 {
		if d.left == 0 {
			if err := d.loadGroup(); err != nil {
				return err
			}
		}
		n := len(dst)
		if uint64(n) > d.left {
			n = int(d.left)
		}
		switch d.mode {
		case rleRun:
			v := d.cur
			for i := 0; i < n; i++ {
				dst[i] = v
			}
		case rleDelta:
			v, step := d.cur, d.delta
			for i := 0; i < n; i++ {
				v += step
				dst[i] = v
			}
			d.cur = v
		default: // literal
			for i := 0; i < n; i++ {
				v, c := binary.Uvarint(d.buf[d.off:])
				if c <= 0 {
					return fmt.Errorf("orcfile: bad literal value")
				}
				d.off += c
				dst[i] = decodeZigzag(v)
			}
		}
		d.left -= uint64(n)
		dst = dst[n:]
	}
	return nil
}

// bitWriter packs booleans into bytes, LSB first.
type bitWriter struct {
	out  []byte
	cur  byte
	nbit uint8
}

func (w *bitWriter) Append(b bool) {
	if b {
		w.cur |= 1 << w.nbit
	}
	w.nbit++
	if w.nbit == 8 {
		w.out = append(w.out, w.cur)
		w.cur, w.nbit = 0, 0
	}
}

func (w *bitWriter) Finish() []byte {
	if w.nbit > 0 {
		w.out = append(w.out, w.cur)
		w.cur, w.nbit = 0, 0
	}
	return w.out
}

func (w *bitWriter) Reset() {
	w.out = w.out[:0]
	w.cur, w.nbit = 0, 0
}

// bitReader unpacks booleans.
type bitReader struct {
	buf []byte
	idx int
}

func newBitReader(buf []byte) *bitReader { return &bitReader{buf: buf} }

func (r *bitReader) Next() (bool, error) {
	byteIdx := r.idx / 8
	if byteIdx >= len(r.buf) {
		return false, fmt.Errorf("orcfile: bit stream exhausted")
	}
	b := r.buf[byteIdx]&(1<<(r.idx%8)) != 0
	r.idx++
	return b, nil
}

// Fill unpacks len(dst) booleans in one pass.
func (r *bitReader) Fill(dst []bool) error {
	if (r.idx+len(dst)+7)/8 > len(r.buf) {
		return fmt.Errorf("orcfile: bit stream exhausted")
	}
	idx := r.idx
	for i := range dst {
		dst[i] = r.buf[idx>>3]&(1<<(idx&7)) != 0
		idx++
	}
	r.idx = idx
	return nil
}

// floatEncoder stores raw IEEE bits little-endian.
type floatEncoder struct{ out []byte }

func (e *floatEncoder) Append(v float64) {
	e.out = binary.LittleEndian.AppendUint64(e.out, math.Float64bits(v))
}
func (e *floatEncoder) Finish() []byte { return e.out }
func (e *floatEncoder) Reset()         { e.out = e.out[:0] }

type floatDecoder struct {
	buf []byte
	off int
}

func newFloatDecoder(buf []byte) *floatDecoder { return &floatDecoder{buf: buf} }

func (d *floatDecoder) Next() (float64, error) {
	if d.off+8 > len(d.buf) {
		return 0, fmt.Errorf("orcfile: float stream exhausted")
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.buf[d.off:]))
	d.off += 8
	return v, nil
}

// Fill decodes len(dst) floats in one bounds-checked pass.
func (d *floatDecoder) Fill(dst []float64) error {
	if d.off+8*len(dst) > len(d.buf) {
		return fmt.Errorf("orcfile: float stream exhausted")
	}
	buf := d.buf[d.off:]
	for i := range dst {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(buf[8*i:]))
	}
	d.off += 8 * len(dst)
	return nil
}

// appendBytesVal appends a length-prefixed byte string.
func appendBytesVal(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func readBytesVal(buf []byte, off int) (string, int, error) {
	l, c := binary.Uvarint(buf[off:])
	if c <= 0 {
		return "", 0, fmt.Errorf("orcfile: bad string length")
	}
	off += c
	end := off + int(l)
	if end > len(buf) || end < off {
		return "", 0, fmt.Errorf("orcfile: truncated string")
	}
	return string(buf[off:end]), end, nil
}
