package orcfile

import (
	"bytes"
	"io"
	"math/rand"
	"testing"

	"dualtable/internal/datum"
)

// genRows builds a mixed-kind table with NULLs, runs, deltas, and both
// string encodings (low-cardinality column → dictionary, unique
// column → direct).
func genRows(t *testing.T, n int, seed int64) (datum.Schema, []datum.Row) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	schema := datum.Schema{
		{Name: "id", Kind: datum.KindInt},       // delta runs
		{Name: "grp", Kind: datum.KindInt},      // repeats + nulls
		{Name: "v", Kind: datum.KindFloat},      // nulls
		{Name: "flag", Kind: datum.KindBool},    // nulls
		{Name: "tag", Kind: datum.KindString},   // dictionary
		{Name: "note", Kind: datum.KindString},  // direct
		{Name: "empty", Kind: datum.KindString}, // all NULL
	}
	rows := make([]datum.Row, n)
	tags := []string{"a", "bb", "ccc", ""}
	for i := range rows {
		row := datum.Row{
			datum.Int(int64(i)),
			datum.Int(int64(i / 7)),
			datum.Float(rng.Float64() * 100),
			datum.Bool(i%3 == 0),
			datum.String_(tags[i%len(tags)]),
			datum.String_(string(rune('a'+i%26)) + string(rune('0'+i%10)) + "x"),
			datum.Null,
		}
		if i%11 == 0 {
			row[1] = datum.Null
		}
		if i%5 == 0 {
			row[2] = datum.Null
		}
		if i%13 == 0 {
			row[3] = datum.Null
		}
		if i%17 == 0 {
			row[4] = datum.Null
		}
		rows[i] = row
	}
	return schema, rows
}

func writeBatchFile(t *testing.T, schema datum.Schema, rows []datum.Row, opts WriterOptions) *Reader {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, schema, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := w.WriteRow(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := Open(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	return rd
}

// TestBatchRowEquivalence checks that the batch reader reproduces the
// row reader exactly — values, NULLs, ordinals — across compression,
// stripe sizes, batch sizes and projections.
func TestBatchRowEquivalence(t *testing.T) {
	schema, rows := genRows(t, 3777, 1)
	cases := []struct {
		name string
		opts WriterOptions
	}{
		{"plain", WriterOptions{StripeRows: 1000}},
		{"flate", WriterOptions{StripeRows: 1000, Compression: true}},
		{"one-stripe", WriterOptions{StripeRows: 100000}},
		{"tiny-stripes", WriterOptions{StripeRows: 17, Compression: true}},
	}
	projections := [][]int{nil, {0, 2}, {4, 5}, {1}}
	batchSizes := []int{0, 1, 7, 1000, 5000}
	for _, tc := range cases {
		rd := writeBatchFile(t, schema, rows, tc.opts)
		for _, proj := range projections {
			for _, bs := range batchSizes {
				opts := RowReaderOptions{Columns: proj}
				rr := rd.NewRowReader(opts)
				br := rd.NewBatchReader(opts)
				cols := make([]datum.ColumnVector, len(schema))
				var batchOrd int64
				var inBatch, batchLen int
				for {
					wantRow, wantOrd, rerr := rr.Next()
					for inBatch >= batchLen {
						n, base, berr := br.NextBatch(cols, bs)
						if berr == io.EOF {
							batchLen = -1
							break
						}
						if berr != nil {
							t.Fatalf("%s proj=%v bs=%d: %v", tc.name, proj, bs, berr)
						}
						batchOrd, inBatch, batchLen = base, 0, n
					}
					if rerr == io.EOF {
						if batchLen != -1 {
							t.Fatalf("%s proj=%v bs=%d: batch reader has extra rows", tc.name, proj, bs)
						}
						break
					}
					if rerr != nil {
						t.Fatal(rerr)
					}
					if batchLen == -1 {
						t.Fatalf("%s proj=%v bs=%d: batch reader ended early at ord %d", tc.name, proj, bs, wantOrd)
					}
					gotOrd := batchOrd + int64(inBatch)
					if gotOrd != wantOrd {
						t.Fatalf("%s proj=%v bs=%d: ordinal %d != %d", tc.name, proj, bs, gotOrd, wantOrd)
					}
					for c := range schema {
						got := cols[c].Datum(inBatch)
						if datum.Compare(got, wantRow[c]) != 0 || got.K != wantRow[c].K {
							t.Fatalf("%s proj=%v bs=%d row %d col %d: %v != %v",
								tc.name, proj, bs, wantOrd, c, got, wantRow[c])
						}
					}
					inBatch++
				}
			}
		}
	}
}

// TestBatchReaderPruning checks that pruned stripes advance ordinals
// identically on both readers.
func TestBatchReaderPruning(t *testing.T) {
	schema, rows := genRows(t, 3000, 2)
	rd := writeBatchFile(t, schema, rows, WriterOptions{StripeRows: 500})
	sarg := &SearchArg{Predicates: []Predicate{{Column: 0, Op: OpGE, Value: datum.Int(2200)}}}
	opts := RowReaderOptions{SearchArg: sarg}
	rr := rd.NewRowReader(opts)
	br := rd.NewBatchReader(opts)
	var rowOrds, batchOrds []int64
	for {
		_, ord, err := rr.Next()
		if err != nil {
			break
		}
		rowOrds = append(rowOrds, ord)
	}
	cols := make([]datum.ColumnVector, len(schema))
	for {
		n, base, err := br.NextBatch(cols, 0)
		if err != nil {
			break
		}
		for i := 0; i < n; i++ {
			batchOrds = append(batchOrds, base+int64(i))
		}
	}
	if len(rowOrds) == 0 || len(rowOrds) != len(batchOrds) {
		t.Fatalf("ordinal count mismatch: %d vs %d", len(rowOrds), len(batchOrds))
	}
	for i := range rowOrds {
		if rowOrds[i] != batchOrds[i] {
			t.Fatalf("ordinal %d: %d != %d", i, rowOrds[i], batchOrds[i])
		}
	}
}
