package orcfile

import (
	"encoding/binary"
	"fmt"
	"math"

	"dualtable/internal/datum"
)

func floatBits(f float64) uint64     { return math.Float64bits(f) }
func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }

// ColumnStats summarizes one column within a stripe (or the whole
// file): value count, null count, typed min/max, and numeric sum.
// Stripe statistics drive predicate pushdown: a stripe whose stats
// prove no row can match is skipped without decompression.
type ColumnStats struct {
	Count     int64 // non-null values
	NullCount int64
	HasMinMax bool
	Min       datum.Datum
	Max       datum.Datum
	Sum       float64 // meaningful for numeric columns
}

// Update folds one value into the stats.
func (s *ColumnStats) Update(d datum.Datum) {
	if d.IsNull() {
		s.NullCount++
		return
	}
	s.Count++
	if !s.HasMinMax {
		s.Min, s.Max, s.HasMinMax = d, d, true
	} else {
		if datum.Compare(d, s.Min) < 0 {
			s.Min = d
		}
		if datum.Compare(d, s.Max) > 0 {
			s.Max = d
		}
	}
	if f, ok := d.AsFloat(); ok {
		s.Sum += f
	}
}

// Merge folds another stats object (e.g. stripe stats into file
// stats).
func (s *ColumnStats) Merge(o ColumnStats) {
	s.Count += o.Count
	s.NullCount += o.NullCount
	s.Sum += o.Sum
	if o.HasMinMax {
		if !s.HasMinMax {
			s.Min, s.Max, s.HasMinMax = o.Min, o.Max, true
		} else {
			if datum.Compare(o.Min, s.Min) < 0 {
				s.Min = o.Min
			}
			if datum.Compare(o.Max, s.Max) > 0 {
				s.Max = o.Max
			}
		}
	}
}

func (s *ColumnStats) marshal(dst []byte) []byte {
	dst = binary.AppendVarint(dst, s.Count)
	dst = binary.AppendVarint(dst, s.NullCount)
	if s.HasMinMax {
		dst = append(dst, 1)
		dst = datum.AppendDatum(dst, s.Min)
		dst = datum.AppendDatum(dst, s.Max)
	} else {
		dst = append(dst, 0)
	}
	return binary.LittleEndian.AppendUint64(dst, floatBits(s.Sum))
}

func unmarshalStats(buf []byte, off int) (ColumnStats, int, error) {
	var s ColumnStats
	v, c := binary.Varint(buf[off:])
	if c <= 0 {
		return s, 0, fmt.Errorf("orcfile: bad stats count")
	}
	s.Count = v
	off += c
	v, c = binary.Varint(buf[off:])
	if c <= 0 {
		return s, 0, fmt.Errorf("orcfile: bad stats null count")
	}
	s.NullCount = v
	off += c
	if off >= len(buf) {
		return s, 0, fmt.Errorf("orcfile: truncated stats")
	}
	has := buf[off]
	off++
	if has == 1 {
		d, n, err := datum.DecodeDatum(buf[off:])
		if err != nil {
			return s, 0, err
		}
		s.Min = d
		off += n
		d, n, err = datum.DecodeDatum(buf[off:])
		if err != nil {
			return s, 0, err
		}
		s.Max = d
		off += n
		s.HasMinMax = true
	}
	if off+8 > len(buf) {
		return s, 0, fmt.Errorf("orcfile: truncated stats sum")
	}
	s.Sum = floatFromBits(binary.LittleEndian.Uint64(buf[off:]))
	off += 8
	return s, off, nil
}

// CmpOp is a comparison operator in a search argument.
type CmpOp uint8

// Comparison operators usable in search arguments.
const (
	OpEQ CmpOp = iota
	OpNE
	OpLT
	OpLE
	OpGT
	OpGE
)

// String names the operator.
func (op CmpOp) String() string {
	switch op {
	case OpEQ:
		return "="
	case OpNE:
		return "!="
	case OpLT:
		return "<"
	case OpLE:
		return "<="
	case OpGT:
		return ">"
	case OpGE:
		return ">="
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// Predicate is one conjunct of a search argument: column <op> value.
type Predicate struct {
	Column int
	Op     CmpOp
	Value  datum.Datum
}

// SearchArg is a conjunction of predicates used for stripe pruning
// (the ORC "SArg" mechanism). An empty SearchArg matches everything.
type SearchArg struct {
	Predicates []Predicate
}

// MaybeMatches reports whether a stripe with the given per-column
// stats could contain a matching row. It must never return false for
// a stripe that has a match (no false pruning); returning true for a
// non-matching stripe merely costs a read.
func (sa *SearchArg) MaybeMatches(stats []ColumnStats) bool {
	if sa == nil {
		return true
	}
	for _, p := range sa.Predicates {
		if p.Column < 0 || p.Column >= len(stats) {
			continue
		}
		st := stats[p.Column]
		if !st.HasMinMax {
			// All-null (or empty) column: no non-null value can match
			// a comparison, but nulls are filtered by the engine, so
			// if the column has only nulls the conjunct can't be true.
			if st.Count == 0 && st.NullCount > 0 {
				return false
			}
			continue
		}
		switch p.Op {
		case OpEQ:
			if datum.Compare(p.Value, st.Min) < 0 || datum.Compare(p.Value, st.Max) > 0 {
				return false
			}
		case OpLT:
			if datum.Compare(st.Min, p.Value) >= 0 {
				return false
			}
		case OpLE:
			if datum.Compare(st.Min, p.Value) > 0 {
				return false
			}
		case OpGT:
			if datum.Compare(st.Max, p.Value) <= 0 {
				return false
			}
		case OpGE:
			if datum.Compare(st.Max, p.Value) < 0 {
				return false
			}
		case OpNE:
			// Prunable only when every value equals p.Value.
			if st.HasMinMax && datum.Compare(st.Min, st.Max) == 0 &&
				datum.Compare(st.Min, p.Value) == 0 && st.NullCount == 0 {
				return false
			}
		}
	}
	return true
}
