package orcfile

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"fmt"
	"io"

	"dualtable/internal/datum"
)

// Reader reads an ORC-like file from any io.ReaderAt.
type Reader struct {
	r          io.ReaderAt
	size       int64
	schema     datum.Schema
	userMeta   map[string]string
	numRows    int64
	stripes    []stripeMeta
	fileStats  []ColumnStats
	compressed bool
}

// Open parses the tail and footer of a file.
func Open(r io.ReaderAt, size int64) (*Reader, error) {
	if size < tailSize {
		return nil, fmt.Errorf("orcfile: file too small (%d bytes)", size)
	}
	var tail [tailSize]byte
	if _, err := r.ReadAt(tail[:], size-tailSize); err != nil {
		return nil, fmt.Errorf("orcfile: read tail: %w", err)
	}
	if binary.LittleEndian.Uint64(tail[24:]) != orcMagic {
		return nil, fmt.Errorf("orcfile: bad magic (not an ORC file)")
	}
	footerOff := binary.LittleEndian.Uint64(tail[0:])
	footerLen := binary.LittleEndian.Uint64(tail[8:])
	flags := binary.LittleEndian.Uint64(tail[16:])
	if int64(footerOff+footerLen) > size-tailSize {
		return nil, fmt.Errorf("orcfile: footer out of bounds")
	}
	fb := make([]byte, footerLen)
	if _, err := r.ReadAt(fb, int64(footerOff)); err != nil {
		return nil, fmt.Errorf("orcfile: read footer: %w", err)
	}
	rd := &Reader{r: r, size: size, compressed: flags&flagFlate != 0}
	if rd.compressed {
		dec, err := io.ReadAll(flate.NewReader(bytes.NewReader(fb)))
		if err != nil {
			return nil, fmt.Errorf("orcfile: decompress footer: %w", err)
		}
		fb = dec
	}
	if err := rd.parseFooter(fb); err != nil {
		return nil, err
	}
	return rd, nil
}

func (rd *Reader) parseFooter(fb []byte) error {
	off := 0
	ncols, c := binary.Uvarint(fb)
	if c <= 0 {
		return fmt.Errorf("orcfile: bad footer schema count")
	}
	off += c
	for i := uint64(0); i < ncols; i++ {
		name, n, err := readBytesVal(fb, off)
		if err != nil {
			return err
		}
		off = n
		if off >= len(fb) {
			return fmt.Errorf("orcfile: truncated schema")
		}
		kind := datum.Kind(fb[off])
		off++
		rd.schema = append(rd.schema, datum.Column{Name: name, Kind: kind})
	}
	nmeta, c := binary.Uvarint(fb[off:])
	if c <= 0 {
		return fmt.Errorf("orcfile: bad meta count")
	}
	off += c
	rd.userMeta = make(map[string]string, nmeta)
	for i := uint64(0); i < nmeta; i++ {
		k, n, err := readBytesVal(fb, off)
		if err != nil {
			return err
		}
		off = n
		v, n2, err := readBytesVal(fb, off)
		if err != nil {
			return err
		}
		off = n2
		rd.userMeta[k] = v
	}
	rows, c := binary.Uvarint(fb[off:])
	if c <= 0 {
		return fmt.Errorf("orcfile: bad row count")
	}
	rd.numRows = int64(rows)
	off += c
	nstripes, c := binary.Uvarint(fb[off:])
	if c <= 0 {
		return fmt.Errorf("orcfile: bad stripe count")
	}
	off += c
	for i := uint64(0); i < nstripes; i++ {
		var sm stripeMeta
		vals := make([]uint64, 3)
		for j := range vals {
			v, n := binary.Uvarint(fb[off:])
			if n <= 0 {
				return fmt.Errorf("orcfile: bad stripe header")
			}
			vals[j] = v
			off += n
		}
		sm.offset, sm.length, sm.rows = vals[0], vals[1], int64(vals[2])
		for j := 0; j < len(rd.schema); j++ {
			ro, n := binary.Uvarint(fb[off:])
			if n <= 0 {
				return fmt.Errorf("orcfile: bad stream offset")
			}
			off += n
			sl, n2 := binary.Uvarint(fb[off:])
			if n2 <= 0 {
				return fmt.Errorf("orcfile: bad stream length")
			}
			off += n2
			sm.streams = append(sm.streams, streamMeta{relOff: ro, length: sl})
		}
		for j := 0; j < len(rd.schema); j++ {
			st, n, err := unmarshalStats(fb, off)
			if err != nil {
				return err
			}
			off = n
			sm.stats = append(sm.stats, st)
		}
		rd.stripes = append(rd.stripes, sm)
	}
	for j := 0; j < len(rd.schema); j++ {
		st, n, err := unmarshalStats(fb, off)
		if err != nil {
			return err
		}
		off = n
		rd.fileStats = append(rd.fileStats, st)
	}
	return nil
}

// Schema returns the file schema.
func (rd *Reader) Schema() datum.Schema { return rd.schema }

// NumRows returns the total row count.
func (rd *Reader) NumRows() int64 { return rd.numRows }

// UserMeta returns the footer's user metadata.
func (rd *Reader) UserMeta() map[string]string { return rd.userMeta }

// NumStripes returns the stripe count.
func (rd *Reader) NumStripes() int { return len(rd.stripes) }

// StripeStats returns the per-column statistics of stripe i.
func (rd *Reader) StripeStats(i int) []ColumnStats { return rd.stripes[i].stats }

// FileStats returns the file-level per-column statistics.
func (rd *Reader) FileStats() []ColumnStats { return rd.fileStats }

// StripeRows returns the row count of stripe i.
func (rd *Reader) StripeRows(i int) int64 { return rd.stripes[i].rows }

// RowReaderOptions configures a row scan.
type RowReaderOptions struct {
	// Columns projects a subset of columns by index (nil = all). The
	// returned rows still have full schema arity; unprojected columns
	// are NULL — this keeps column indexes stable for the engine.
	Columns []int
	// SearchArg prunes stripes by statistics.
	SearchArg *SearchArg
}

// RowReader iterates the rows of a file in order, reporting each
// row's ordinal (the ORC row number DualTable uses in record IDs —
// pruned stripes still advance the ordinal).
type RowReader struct {
	rd         *Reader
	opts       RowReaderOptions
	project    []bool
	stripeIdx  int
	cols       []*columnCursor
	inStripe   int64
	stripeLen  int64
	rowOrdinal int64
	row        datum.Row
}

// columnCursor decodes one column of the current stripe.
type columnCursor struct {
	kind     datum.Kind
	presence *bitReader
	ints     *intDecoder
	floats   *floatDecoder
	bools    *bitReader
	// string state
	dict    []string
	indices *intDecoder
	lens    *intDecoder
	blob    []byte
	blobOff int
}

// NewRowReader starts a scan.
func (rd *Reader) NewRowReader(opts RowReaderOptions) *RowReader {
	rr := &RowReader{rd: rd, opts: opts, project: make([]bool, len(rd.schema))}
	if opts.Columns == nil {
		for i := range rr.project {
			rr.project[i] = true
		}
	} else {
		for _, c := range opts.Columns {
			if c >= 0 && c < len(rr.project) {
				rr.project[c] = true
			}
		}
	}
	rr.row = make(datum.Row, len(rd.schema))
	return rr
}

// Next returns the next row and its file row number. The returned row
// is reused between calls; clone it to retain.
func (rr *RowReader) Next() (datum.Row, int64, error) {
	for rr.inStripe >= rr.stripeLen {
		if rr.stripeIdx >= len(rr.rd.stripes) {
			return nil, 0, io.EOF
		}
		sm := rr.rd.stripes[rr.stripeIdx]
		if rr.opts.SearchArg != nil && !rr.opts.SearchArg.MaybeMatches(sm.stats) {
			rr.rowOrdinal += sm.rows
			rr.stripeIdx++
			continue
		}
		if err := rr.openStripe(sm); err != nil {
			return nil, 0, err
		}
		rr.stripeIdx++
		rr.inStripe = 0
		rr.stripeLen = sm.rows
	}
	ord := rr.rowOrdinal
	for i, cur := range rr.cols {
		if cur == nil {
			rr.row[i] = datum.Null
			continue
		}
		d, err := cur.next()
		if err != nil {
			return nil, 0, fmt.Errorf("orcfile: column %s row %d: %w", rr.rd.schema[i].Name, ord, err)
		}
		rr.row[i] = d
	}
	rr.inStripe++
	rr.rowOrdinal++
	return rr.row, ord, nil
}

// openStripe loads and decodes the projected column streams.
func (rr *RowReader) openStripe(sm stripeMeta) error {
	cols, err := rr.rd.openStripeCursors(sm, rr.project)
	if err != nil {
		return err
	}
	rr.cols = cols
	return nil
}

// openStripeCursors reads and decodes the projected column streams of
// one stripe — shared by the row and batch readers, so both charge
// identical I/O and decode identical bytes.
func (rd *Reader) openStripeCursors(sm stripeMeta, project []bool) ([]*columnCursor, error) {
	cols := make([]*columnCursor, len(rd.schema))
	for i := range rd.schema {
		if !project[i] {
			continue
		}
		st := sm.streams[i]
		buf := make([]byte, st.length)
		if _, err := rd.r.ReadAt(buf, int64(sm.offset+st.relOff)); err != nil {
			return nil, fmt.Errorf("orcfile: read stripe stream: %w", err)
		}
		if rd.compressed {
			dec, err := io.ReadAll(flate.NewReader(bytes.NewReader(buf)))
			if err != nil {
				return nil, fmt.Errorf("orcfile: decompress stream: %w", err)
			}
			buf = dec
		}
		cur, err := newColumnCursor(rd.schema[i].Kind, buf)
		if err != nil {
			return nil, err
		}
		cols[i] = cur
	}
	return cols, nil
}

func newColumnCursor(kind datum.Kind, buf []byte) (*columnCursor, error) {
	plen, c := binary.Uvarint(buf)
	if c <= 0 {
		return nil, fmt.Errorf("orcfile: bad presence length")
	}
	off := c
	if off+int(plen) > len(buf) {
		return nil, fmt.Errorf("orcfile: truncated presence bitmap")
	}
	cur := &columnCursor{kind: kind, presence: newBitReader(buf[off : off+int(plen)])}
	data := buf[off+int(plen):]
	switch kind {
	case datum.KindInt:
		cur.ints = newIntDecoder(data)
	case datum.KindFloat:
		cur.floats = newFloatDecoder(data)
	case datum.KindBool:
		cur.bools = newBitReader(data)
	case datum.KindString:
		if len(data) == 0 {
			// Zero non-null strings in this stripe.
			cur.lens = newIntDecoder(nil)
			cur.blob = nil
			break
		}
		mode := data[0]
		data = data[1:]
		if mode == 0x01 { // dictionary
			n, c := binary.Uvarint(data)
			if c <= 0 {
				return nil, fmt.Errorf("orcfile: bad dict size")
			}
			p := c
			dict := make([]string, 0, n)
			for i := uint64(0); i < n; i++ {
				s, np, err := readBytesVal(data, p)
				if err != nil {
					return nil, err
				}
				dict = append(dict, s)
				p = np
			}
			il, c2 := binary.Uvarint(data[p:])
			if c2 <= 0 {
				return nil, fmt.Errorf("orcfile: bad dict index length")
			}
			p += c2
			if p+int(il) > len(data) {
				return nil, fmt.Errorf("orcfile: truncated dict indices")
			}
			cur.dict = dict
			cur.indices = newIntDecoder(data[p : p+int(il)])
		} else { // direct
			ll, c := binary.Uvarint(data)
			if c <= 0 {
				return nil, fmt.Errorf("orcfile: bad length-stream size")
			}
			p := c
			if p+int(ll) > len(data) {
				return nil, fmt.Errorf("orcfile: truncated length stream")
			}
			cur.lens = newIntDecoder(data[p : p+int(ll)])
			cur.blob = data[p+int(ll):]
		}
	default:
		return nil, fmt.Errorf("orcfile: unsupported column kind %v", kind)
	}
	return cur, nil
}

func (cur *columnCursor) next() (datum.Datum, error) {
	present, err := cur.presence.Next()
	if err != nil {
		return datum.Null, err
	}
	if !present {
		return datum.Null, nil
	}
	switch cur.kind {
	case datum.KindInt:
		v, err := cur.ints.Next()
		if err != nil {
			return datum.Null, err
		}
		return datum.Int(v), nil
	case datum.KindFloat:
		v, err := cur.floats.Next()
		if err != nil {
			return datum.Null, err
		}
		return datum.Float(v), nil
	case datum.KindBool:
		v, err := cur.bools.Next()
		if err != nil {
			return datum.Null, err
		}
		return datum.Bool(v), nil
	case datum.KindString:
		if cur.dict != nil {
			idx, err := cur.indices.Next()
			if err != nil {
				return datum.Null, err
			}
			if idx < 0 || int(idx) >= len(cur.dict) {
				return datum.Null, fmt.Errorf("orcfile: dict index %d out of range", idx)
			}
			return datum.String_(cur.dict[idx]), nil
		}
		l, err := cur.lens.Next()
		if err != nil {
			return datum.Null, err
		}
		end := cur.blobOff + int(l)
		if end > len(cur.blob) || end < cur.blobOff {
			return datum.Null, fmt.Errorf("orcfile: string blob exhausted")
		}
		s := string(cur.blob[cur.blobOff:end])
		cur.blobOff = end
		return datum.String_(s), nil
	}
	return datum.Null, fmt.Errorf("orcfile: bad cursor kind")
}
