package orcfile

import (
	"bytes"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"dualtable/internal/datum"
)

func TestIntRLERoundtrip(t *testing.T) {
	cases := [][]int64{
		{},
		{1},
		{1, 2, 3},                // delta run
		{5, 5, 5, 5, 5},          // constant run
		{1, 9, 2, 8, 3, 7},       // literals
		{0, 0, 0, 1, 2, 3, 9, 9}, // mixed
		{-1, -2, -3, -4},         // negative delta
		{1 << 62, -(1 << 62), 0},
	}
	for _, vals := range cases {
		var e intEncoder
		for _, v := range vals {
			e.Append(v)
		}
		enc := e.Finish()
		d := newIntDecoder(enc)
		for i, want := range vals {
			got, err := d.Next()
			if err != nil {
				t.Fatalf("%v: decode %d: %v", vals, i, err)
			}
			if got != want {
				t.Fatalf("%v: index %d: got %d want %d", vals, i, got, want)
			}
		}
		if _, err := d.Next(); err == nil {
			t.Errorf("%v: decoder should be exhausted", vals)
		}
	}
}

func TestIntRLECompressesRuns(t *testing.T) {
	var e intEncoder
	for i := 0; i < 100000; i++ {
		e.Append(42)
	}
	enc := e.Finish()
	// Runs are capped at maxEncodeRun, so ~98 run headers expected.
	if len(enc) > 1024 {
		t.Errorf("constant run of 100k ints encoded to %d bytes", len(enc))
	}
	var e2 intEncoder
	for i := int64(0); i < 100000; i++ {
		e2.Append(i)
	}
	enc2 := e2.Finish()
	if len(enc2) > 2048 {
		t.Errorf("monotonic run of 100k ints encoded to %d bytes", len(enc2))
	}
}

func TestPropertyIntRLE(t *testing.T) {
	f := func(seed int64, n uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := make([]int64, int(n)%2000)
		for i := range vals {
			switch rng.Intn(3) {
			case 0:
				vals[i] = int64(rng.Intn(5)) // encourage runs
			case 1:
				if i > 0 {
					vals[i] = vals[i-1] + 1 // encourage deltas
				}
			default:
				vals[i] = rng.Int63() - rng.Int63()
			}
		}
		var e intEncoder
		for _, v := range vals {
			e.Append(v)
		}
		d := newIntDecoder(e.Finish())
		for _, want := range vals {
			got, err := d.Next()
			if err != nil || got != want {
				return false
			}
		}
		_, err := d.Next()
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBitPackRoundtrip(t *testing.T) {
	var w bitWriter
	vals := []bool{true, false, true, true, false, false, true, false, true, true}
	for _, v := range vals {
		w.Append(v)
	}
	r := newBitReader(w.Finish())
	for i, want := range vals {
		got, err := r.Next()
		if err != nil || got != want {
			t.Fatalf("bit %d: %v %v", i, got, err)
		}
	}
}

func testSchema() datum.Schema {
	return datum.Schema{
		{Name: "id", Kind: datum.KindInt},
		{Name: "price", Kind: datum.KindFloat},
		{Name: "flag", Kind: datum.KindString},
		{Name: "ok", Kind: datum.KindBool},
	}
}

func makeRows(n int, seed int64) []datum.Row {
	rng := rand.New(rand.NewSource(seed))
	flags := []string{"A", "N", "R"}
	rows := make([]datum.Row, n)
	for i := range rows {
		row := datum.Row{
			datum.Int(int64(i)),
			datum.Float(rng.Float64() * 1000),
			datum.String_(flags[rng.Intn(len(flags))]),
			datum.Bool(rng.Intn(2) == 0),
		}
		if rng.Intn(10) == 0 {
			row[1] = datum.Null
		}
		rows[i] = row
	}
	return rows
}

func writeFile(t *testing.T, rows []datum.Row, opts WriterOptions) []byte {
	t.Helper()
	var buf bytes.Buffer
	w, err := NewWriter(&buf, testSchema(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if err := w.WriteRow(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func readAll(t *testing.T, data []byte, opts RowReaderOptions) ([]datum.Row, []int64) {
	t.Helper()
	rd, err := Open(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	rr := rd.NewRowReader(opts)
	var rows []datum.Row
	var ords []int64
	for {
		row, ord, err := rr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		rows = append(rows, row.Clone())
		ords = append(ords, ord)
	}
	return rows, ords
}

func TestWriteReadRoundtrip(t *testing.T) {
	for _, compress := range []bool{false, true} {
		t.Run(fmt.Sprintf("compress=%v", compress), func(t *testing.T) {
			rows := makeRows(2500, 1)
			data := writeFile(t, rows, WriterOptions{StripeRows: 1000, Compression: compress})
			got, ords := readAll(t, data, RowReaderOptions{})
			if len(got) != len(rows) {
				t.Fatalf("rows: %d vs %d", len(got), len(rows))
			}
			for i := range rows {
				if !got[i].Equal(rows[i]) {
					t.Fatalf("row %d: %v vs %v", i, got[i], rows[i])
				}
				if ords[i] != int64(i) {
					t.Fatalf("ordinal %d: got %d", i, ords[i])
				}
			}
		})
	}
}

func TestFooterMetadata(t *testing.T) {
	rows := makeRows(100, 2)
	data := writeFile(t, rows, WriterOptions{
		StripeRows: 40,
		UserMeta:   map[string]string{"dualtable.fileid": "17", "creator": "test"},
	})
	rd, err := Open(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if rd.NumRows() != 100 {
		t.Errorf("NumRows = %d", rd.NumRows())
	}
	if rd.NumStripes() != 3 { // 40+40+20
		t.Errorf("NumStripes = %d", rd.NumStripes())
	}
	if rd.StripeRows(2) != 20 {
		t.Errorf("StripeRows(2) = %d", rd.StripeRows(2))
	}
	if rd.UserMeta()["dualtable.fileid"] != "17" {
		t.Errorf("UserMeta = %v", rd.UserMeta())
	}
	if !reflect.DeepEqual(rd.Schema(), testSchema()) {
		t.Errorf("Schema = %v", rd.Schema())
	}
}

func TestStatsBoundValues(t *testing.T) {
	rows := makeRows(500, 3)
	data := writeFile(t, rows, WriterOptions{StripeRows: 100})
	rd, err := Open(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	// id column: stripe s covers ids [100s, 100s+99].
	for s := 0; s < rd.NumStripes(); s++ {
		st := rd.StripeStats(s)[0]
		if st.Min.I != int64(100*s) || st.Max.I != int64(100*s+99) {
			t.Errorf("stripe %d id stats = [%v, %v]", s, st.Min, st.Max)
		}
		if st.Count != 100 {
			t.Errorf("stripe %d count = %d", s, st.Count)
		}
	}
	fileStats := rd.FileStats()
	if fileStats[0].Min.I != 0 || fileStats[0].Max.I != 499 {
		t.Errorf("file id stats = [%v, %v]", fileStats[0].Min, fileStats[0].Max)
	}
	// Sum of id column = 499*500/2.
	if fileStats[0].Sum != float64(499*500/2) {
		t.Errorf("file id sum = %v", fileStats[0].Sum)
	}
	// price column has nulls.
	if fileStats[1].NullCount == 0 {
		t.Error("expected nulls in price stats")
	}
}

func TestProjection(t *testing.T) {
	rows := makeRows(100, 4)
	data := writeFile(t, rows, WriterOptions{StripeRows: 50})
	got, _ := readAll(t, data, RowReaderOptions{Columns: []int{0, 2}})
	for i, row := range got {
		if row[0].K != datum.KindInt || row[2].K != datum.KindString {
			t.Fatalf("row %d projected cols missing: %v", i, row)
		}
		if !row[1].IsNull() || !row[3].IsNull() {
			t.Fatalf("row %d unprojected cols should be NULL: %v", i, row)
		}
	}
}

func TestPredicatePushdownSkipsStripes(t *testing.T) {
	rows := makeRows(1000, 5)
	data := writeFile(t, rows, WriterOptions{StripeRows: 100})
	// id >= 850: only stripes 8 and 9 qualify; ordinals must still be
	// the global row numbers.
	sa := &SearchArg{Predicates: []Predicate{{Column: 0, Op: OpGE, Value: datum.Int(850)}}}
	got, ords := readAll(t, data, RowReaderOptions{SearchArg: sa})
	if len(got) != 200 {
		t.Fatalf("pushdown returned %d rows, want 200 (2 stripes)", len(got))
	}
	if ords[0] != 800 {
		t.Errorf("first surviving ordinal = %d, want 800", ords[0])
	}
	for i, row := range got {
		if row[0].I != int64(800+i) {
			t.Fatalf("row %d id = %d", i, row[0].I)
		}
	}
}

func TestPushdownNeverDropsMatches(t *testing.T) {
	// Property: for random predicates, pushdown scan ⊇ exact matches.
	rows := makeRows(600, 6)
	data := writeFile(t, rows, WriterOptions{StripeRows: 64})
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		col := rng.Intn(2) // id or price
		ops := []CmpOp{OpEQ, OpNE, OpLT, OpLE, OpGT, OpGE}
		op := ops[rng.Intn(len(ops))]
		var val datum.Datum
		if col == 0 {
			val = datum.Int(int64(rng.Intn(700)))
		} else {
			val = datum.Float(rng.Float64() * 1000)
		}
		sa := &SearchArg{Predicates: []Predicate{{Column: col, Op: op, Value: val}}}
		got, _ := readAll(t, data, RowReaderOptions{SearchArg: sa})
		gotSet := map[int64]bool{}
		for _, r := range got {
			gotSet[r[0].I] = true
		}
		matches := func(d datum.Datum) bool {
			if d.IsNull() {
				return false
			}
			c := datum.Compare(d, val)
			switch op {
			case OpEQ:
				return c == 0
			case OpNE:
				return c != 0
			case OpLT:
				return c < 0
			case OpLE:
				return c <= 0
			case OpGT:
				return c > 0
			default:
				return c >= 0
			}
		}
		for _, r := range rows {
			if matches(r[col]) && !gotSet[r[0].I] {
				t.Fatalf("trial %d: pushdown dropped matching row id=%d (pred col%d %v %v)",
					trial, r[0].I, col, op, val)
			}
		}
	}
}

func TestAllNullColumn(t *testing.T) {
	schema := datum.Schema{{Name: "v", Kind: datum.KindString}}
	var buf bytes.Buffer
	w, _ := NewWriter(&buf, schema, WriterOptions{StripeRows: 10})
	for i := 0; i < 25; i++ {
		if err := w.WriteRow(datum.Row{datum.Null}); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	rd, err := Open(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
	if err != nil {
		t.Fatal(err)
	}
	rr := rd.NewRowReader(RowReaderOptions{})
	n := 0
	for {
		row, _, err := rr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if !row[0].IsNull() {
			t.Fatalf("expected NULL, got %v", row[0])
		}
		n++
	}
	if n != 25 {
		t.Errorf("read %d rows", n)
	}
	// An equality predicate on the all-null column prunes everything.
	sa := &SearchArg{Predicates: []Predicate{{Column: 0, Op: OpEQ, Value: datum.String_("x")}}}
	got, _ := readAll(t, buf.Bytes(), RowReaderOptions{SearchArg: sa})
	if len(got) != 0 {
		t.Errorf("all-null pruning failed: %d rows", len(got))
	}
}

func TestDictionaryEncodingChosen(t *testing.T) {
	// Low-cardinality column should compress far better than random.
	schema := datum.Schema{{Name: "s", Kind: datum.KindString}}
	build := func(card int) int {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf, schema, WriterOptions{StripeRows: 5000})
		rng := rand.New(rand.NewSource(1))
		for i := 0; i < 5000; i++ {
			w.WriteRow(datum.Row{datum.String_(fmt.Sprintf("value-%06d", rng.Intn(card)))})
		}
		w.Close()
		return buf.Len()
	}
	low := build(3)
	high := build(1000000)
	if low*4 > high {
		t.Errorf("dictionary encoding ineffective: low-card %d bytes vs high-card %d", low, high)
	}
	// Roundtrip both.
	for _, card := range []int{3, 1000000} {
		var buf bytes.Buffer
		w, _ := NewWriter(&buf, schema, WriterOptions{StripeRows: 1000})
		rng := rand.New(rand.NewSource(2))
		var want []string
		for i := 0; i < 2000; i++ {
			s := fmt.Sprintf("v-%d", rng.Intn(card))
			want = append(want, s)
			w.WriteRow(datum.Row{datum.String_(s)})
		}
		w.Close()
		rd, err := Open(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			t.Fatal(err)
		}
		rr := rd.NewRowReader(RowReaderOptions{})
		for i, wantS := range want {
			row, _, err := rr.Next()
			if err != nil {
				t.Fatal(err)
			}
			if row[0].S != wantS {
				t.Fatalf("card %d row %d: %q vs %q", card, i, row[0].S, wantS)
			}
		}
	}
}

func TestWriterErrors(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, nil, WriterOptions{}); err == nil {
		t.Error("empty schema should fail")
	}
	w, _ := NewWriter(&buf, testSchema(), WriterOptions{})
	if err := w.WriteRow(datum.Row{datum.Int(1)}); err == nil {
		t.Error("short row should fail")
	}
	if err := w.WriteRow(datum.Row{datum.Float(1), datum.Float(1), datum.String_("x"), datum.Bool(true)}); err == nil {
		t.Error("kind mismatch should fail")
	}
	w.Close()
	if err := w.WriteRow(makeRows(1, 1)[0]); err == nil {
		t.Error("write after close should fail")
	}
	if err := w.Close(); err == nil {
		t.Error("double close should fail")
	}
}

func TestOpenErrors(t *testing.T) {
	if _, err := Open(bytes.NewReader(nil), 0); err == nil {
		t.Error("empty file should fail")
	}
	junk := bytes.Repeat([]byte("j"), 100)
	if _, err := Open(bytes.NewReader(junk), int64(len(junk))); err == nil {
		t.Error("junk file should fail")
	}
}

func TestEmptyFileRoundtrip(t *testing.T) {
	data := writeFile(t, nil, WriterOptions{})
	rd, err := Open(bytes.NewReader(data), int64(len(data)))
	if err != nil {
		t.Fatal(err)
	}
	if rd.NumRows() != 0 || rd.NumStripes() != 0 {
		t.Errorf("empty file: rows=%d stripes=%d", rd.NumRows(), rd.NumStripes())
	}
	rr := rd.NewRowReader(RowReaderOptions{})
	if _, _, err := rr.Next(); err != io.EOF {
		t.Errorf("Next on empty = %v", err)
	}
}

type quickRows struct {
	rows []datum.Row
}

func (quickRows) Generate(rng *rand.Rand, size int) reflect.Value {
	n := rng.Intn(300)
	rows := make([]datum.Row, n)
	for i := range rows {
		row := make(datum.Row, 4)
		if rng.Intn(8) == 0 {
			row[0] = datum.Null
		} else {
			row[0] = datum.Int(rng.Int63n(1e9) - 5e8)
		}
		if rng.Intn(8) == 0 {
			row[1] = datum.Null
		} else {
			row[1] = datum.Float(rng.NormFloat64() * 100)
		}
		if rng.Intn(8) == 0 {
			row[2] = datum.Null
		} else {
			b := make([]byte, rng.Intn(12))
			for j := range b {
				b[j] = byte('a' + rng.Intn(26))
			}
			row[2] = datum.String_(string(b))
		}
		if rng.Intn(8) == 0 {
			row[3] = datum.Null
		} else {
			row[3] = datum.Bool(rng.Intn(2) == 0)
		}
		rows[i] = row
	}
	return reflect.ValueOf(quickRows{rows})
}

func TestPropertyFileRoundtrip(t *testing.T) {
	f := func(qr quickRows, compress bool, stripeExp uint8) bool {
		stripeRows := 1 << (stripeExp%8 + 1) // 2..256
		var buf bytes.Buffer
		w, err := NewWriter(&buf, testSchema(), WriterOptions{StripeRows: stripeRows, Compression: compress})
		if err != nil {
			return false
		}
		for _, r := range qr.rows {
			if err := w.WriteRow(r); err != nil {
				return false
			}
		}
		if err := w.Close(); err != nil {
			return false
		}
		rd, err := Open(bytes.NewReader(buf.Bytes()), int64(buf.Len()))
		if err != nil {
			return false
		}
		rr := rd.NewRowReader(RowReaderOptions{})
		for i, want := range qr.rows {
			row, ord, err := rr.Next()
			if err != nil || ord != int64(i) || !row.Equal(want) {
				return false
			}
		}
		_, _, err = rr.Next()
		return err == io.EOF
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
