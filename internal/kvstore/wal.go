package kvstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"dualtable/internal/dfs"
)

// wal is the write-ahead log of one region store, kept on the
// distributed file system like HBase's HLog. Each record is one
// atomic batch of cells:
//
//	uvarint(payloadLen) payload crc32(payload, 4 bytes LE)
//	payload: uvarint(cellCount) cell*
//
// Replay tolerates a truncated or corrupt tail (the batch being
// written during a crash) by stopping at the first bad record.
type wal struct {
	fs   *dfs.FileSystem
	path string
	w    *dfs.FileWriter
}

func openWAL(fs *dfs.FileSystem, path string) (*wal, []Cell, error) {
	var recovered []Cell
	if fs.Exists(path) {
		// The previous owner may have died without closing the log;
		// reclaim it the way HBase reclaims a dead region server's
		// HLog via HDFS lease recovery.
		if err := fs.RecoverLease(path); err != nil {
			return nil, nil, fmt.Errorf("kvstore: recover wal lease %s: %w", path, err)
		}
		data, err := fs.ReadFile(path)
		if err != nil {
			return nil, nil, fmt.Errorf("kvstore: read wal %s: %w", path, err)
		}
		recovered = replayWAL(data)
		if err := fs.Delete(path, false); err != nil {
			return nil, nil, err
		}
	}
	w, err := fs.Create(path)
	if err != nil {
		return nil, nil, fmt.Errorf("kvstore: create wal %s: %w", path, err)
	}
	l := &wal{fs: fs, path: path, w: w}
	// Re-log recovered cells so the fresh WAL covers them until the
	// next flush.
	if len(recovered) > 0 {
		ptrs := make([]*Cell, len(recovered))
		for i := range recovered {
			ptrs[i] = &recovered[i]
		}
		if err := l.Append(ptrs); err != nil {
			return nil, nil, err
		}
	}
	return l, recovered, nil
}

// replayWAL decodes every complete, checksum-valid record.
func replayWAL(data []byte) []Cell {
	var out []Cell
	off := 0
	for off < len(data) {
		plen, n := binary.Uvarint(data[off:])
		if n <= 0 {
			break
		}
		start := off + n
		end := start + int(plen)
		if end+4 > len(data) || end < start {
			break // truncated tail
		}
		payload := data[start:end]
		want := binary.LittleEndian.Uint32(data[end : end+4])
		if crc32.ChecksumIEEE(payload) != want {
			break // corrupt tail
		}
		cnt, cn := binary.Uvarint(payload)
		if cn <= 0 {
			break
		}
		p := cn
		ok := true
		batch := make([]Cell, 0, cnt)
		for i := uint64(0); i < cnt; i++ {
			c, consumed, err := decodeCell(payload[p:])
			if err != nil {
				ok = false
				break
			}
			batch = append(batch, c.Clone())
			p += consumed
		}
		if !ok {
			break
		}
		out = append(out, batch...)
		off = end + 4
	}
	return out
}

// Append durably logs one batch of cells.
func (l *wal) Append(cells []*Cell) error {
	payload := binary.AppendUvarint(nil, uint64(len(cells)))
	for _, c := range cells {
		payload = appendCell(payload, c)
	}
	rec := binary.AppendUvarint(nil, uint64(len(payload)))
	rec = append(rec, payload...)
	rec = binary.LittleEndian.AppendUint32(rec, crc32.ChecksumIEEE(payload))
	_, err := l.w.Write(rec)
	return err
}

// Truncate discards the log after a successful memtable flush.
func (l *wal) Truncate() error {
	if err := l.w.Close(); err != nil {
		return err
	}
	if err := l.fs.Delete(l.path, false); err != nil {
		return err
	}
	w, err := l.fs.Create(l.path)
	if err != nil {
		return err
	}
	l.w = w
	return nil
}

// Close closes the log file.
func (l *wal) Close() error { return l.w.Close() }
