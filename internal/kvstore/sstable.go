package kvstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"sort"

	"dualtable/internal/dfs"
	"dualtable/internal/sim"
)

// Store files are the on-DFS representation of flushed memtables —
// the equivalent of HBase HFiles. Layout:
//
//	[data block]*  each: uvarint(cellCount) cell*
//	[bloom filter block]
//	[index block]  uvarint(blockCount) then per block:
//	               uvarint(firstRowLen) firstRow uvarint(off) uvarint(len)
//	[trailer]      9 fixed uint64 LE fields:
//	               indexOff indexLen filterOff filterLen entries seq minTs maxTs magic
const (
	ssMagic        = 0xD0A17AB1E0000001
	trailerSize    = 9 * 8
	defaultBlockSz = 4 << 10
)

// ssTableWriter streams sorted cells into a store file.
type ssTableWriter struct {
	w        *dfs.FileWriter
	blockBuf []byte
	blockN   int
	firstRow []byte
	off      uint64

	index   []indexEntry
	bloom   *bloomFilter
	entries uint64
	seq     uint64
	minTs   uint64
	maxTs   uint64
	lastRow []byte
	blockSz int
}

type indexEntry struct {
	firstRow []byte
	off      uint64
	length   uint64
}

func newSSTableWriter(w *dfs.FileWriter, expectedKeys int, seq uint64) *ssTableWriter {
	return &ssTableWriter{
		w:       w,
		bloom:   newBloomFilter(expectedKeys, 0.01),
		seq:     seq,
		minTs:   ^uint64(0),
		blockSz: defaultBlockSz,
	}
}

// Add appends a cell; cells must arrive in CompareCells order.
func (sw *ssTableWriter) Add(c *Cell) error {
	if sw.blockN == 0 {
		sw.firstRow = append(sw.firstRow[:0], c.Row...)
	}
	sw.blockBuf = appendCell(sw.blockBuf, c)
	sw.blockN++
	sw.entries++
	if c.Ts < sw.minTs {
		sw.minTs = c.Ts
	}
	if c.Ts > sw.maxTs {
		sw.maxTs = c.Ts
	}
	if !bytes.Equal(sw.lastRow, c.Row) {
		sw.bloom.Add(c.Row)
		sw.lastRow = append(sw.lastRow[:0], c.Row...)
	}
	if len(sw.blockBuf) >= sw.blockSz {
		return sw.flushBlock()
	}
	return nil
}

func (sw *ssTableWriter) flushBlock() error {
	if sw.blockN == 0 {
		return nil
	}
	hdr := binary.AppendUvarint(nil, uint64(sw.blockN))
	length := uint64(len(hdr) + len(sw.blockBuf))
	if _, err := sw.w.Write(hdr); err != nil {
		return err
	}
	if _, err := sw.w.Write(sw.blockBuf); err != nil {
		return err
	}
	sw.index = append(sw.index, indexEntry{
		firstRow: append([]byte(nil), sw.firstRow...),
		off:      sw.off,
		length:   length,
	})
	sw.off += length
	sw.blockBuf = sw.blockBuf[:0]
	sw.blockN = 0
	return nil
}

// Finish writes the filter, index and trailer and closes the file.
func (sw *ssTableWriter) Finish() error {
	if err := sw.flushBlock(); err != nil {
		return err
	}
	filterOff := sw.off
	filter := sw.bloom.Marshal()
	if _, err := sw.w.Write(filter); err != nil {
		return err
	}
	indexOff := filterOff + uint64(len(filter))
	idx := binary.AppendUvarint(nil, uint64(len(sw.index)))
	for _, e := range sw.index {
		idx = binary.AppendUvarint(idx, uint64(len(e.firstRow)))
		idx = append(idx, e.firstRow...)
		idx = binary.AppendUvarint(idx, e.off)
		idx = binary.AppendUvarint(idx, e.length)
	}
	if _, err := sw.w.Write(idx); err != nil {
		return err
	}
	if sw.entries == 0 {
		sw.minTs = 0
	}
	var tr [trailerSize]byte
	fields := []uint64{
		indexOff, uint64(len(idx)), filterOff, uint64(len(filter)),
		sw.entries, sw.seq, sw.minTs, sw.maxTs, ssMagic,
	}
	for i, f := range fields {
		binary.LittleEndian.PutUint64(tr[i*8:], f)
	}
	if _, err := sw.w.Write(tr[:]); err != nil {
		return err
	}
	return sw.w.Close()
}

// ssTable is an open, immutable store file.
type ssTable struct {
	fs      *dfs.FileSystem
	path    string
	index   []indexEntry
	bloom   *bloomFilter
	entries uint64
	seq     uint64
	minTs   uint64
	maxTs   uint64
	size    int64
}

// openSSTable reads the trailer, index and bloom filter of a store
// file. Block data stays on DFS and is fetched per read.
func openSSTable(fs *dfs.FileSystem, path string, m *sim.Meter) (*ssTable, error) {
	r, err := fs.OpenMeter(path, m)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	size := r.Size()
	if size < trailerSize {
		return nil, fmt.Errorf("kvstore: store file %s too small (%d bytes)", path, size)
	}
	var tr [trailerSize]byte
	if _, err := r.ReadAt(tr[:], size-trailerSize); err != nil {
		return nil, fmt.Errorf("kvstore: read trailer of %s: %w", path, err)
	}
	get := func(i int) uint64 { return binary.LittleEndian.Uint64(tr[i*8:]) }
	if get(8) != ssMagic {
		return nil, fmt.Errorf("kvstore: %s is not a store file (bad magic)", path)
	}
	st := &ssTable{
		fs: fs, path: path,
		entries: get(4), seq: get(5), minTs: get(6), maxTs: get(7),
		size: size,
	}
	indexOff, indexLen := get(0), get(1)
	filterOff, filterLen := get(2), get(3)
	fb := make([]byte, filterLen)
	if _, err := r.ReadAt(fb, int64(filterOff)); err != nil {
		return nil, fmt.Errorf("kvstore: read filter of %s: %w", path, err)
	}
	if st.bloom, err = unmarshalBloom(fb); err != nil {
		return nil, err
	}
	ib := make([]byte, indexLen)
	if _, err := r.ReadAt(ib, int64(indexOff)); err != nil {
		return nil, fmt.Errorf("kvstore: read index of %s: %w", path, err)
	}
	n, consumed := binary.Uvarint(ib)
	if consumed <= 0 {
		return nil, fmt.Errorf("kvstore: bad index header in %s", path)
	}
	off := consumed
	st.index = make([]indexEntry, 0, n)
	for i := uint64(0); i < n; i++ {
		l, c := binary.Uvarint(ib[off:])
		if c <= 0 {
			return nil, fmt.Errorf("kvstore: bad index entry in %s", path)
		}
		off += c
		row := ib[off : off+int(l)]
		off += int(l)
		bo, c2 := binary.Uvarint(ib[off:])
		if c2 <= 0 {
			return nil, fmt.Errorf("kvstore: bad index offset in %s", path)
		}
		off += c2
		bl, c3 := binary.Uvarint(ib[off:])
		if c3 <= 0 {
			return nil, fmt.Errorf("kvstore: bad index length in %s", path)
		}
		off += c3
		st.index = append(st.index, indexEntry{firstRow: append([]byte(nil), row...), off: bo, length: bl})
	}
	return st, nil
}

// blockCells reads and decodes one data block.
func (st *ssTable) blockCells(e indexEntry, m *sim.Meter) ([]Cell, error) {
	r, err := st.fs.OpenMeter(st.path, m)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	buf := make([]byte, e.length)
	if _, err := r.ReadAt(buf, int64(e.off)); err != nil {
		return nil, fmt.Errorf("kvstore: read block of %s: %w", st.path, err)
	}
	n, consumed := binary.Uvarint(buf)
	if consumed <= 0 {
		return nil, fmt.Errorf("kvstore: bad block header in %s", st.path)
	}
	cells := make([]Cell, 0, n)
	off := consumed
	for i := uint64(0); i < n; i++ {
		c, cn, err := decodeCell(buf[off:])
		if err != nil {
			return nil, fmt.Errorf("kvstore: decode cell in %s: %w", st.path, err)
		}
		cells = append(cells, c.Clone())
		off += cn
	}
	return cells, nil
}

// seekBlock returns the index of the first block that could contain
// row (the last block whose firstRow <= row), or 0.
func (st *ssTable) seekBlock(row []byte) int {
	i := sort.Search(len(st.index), func(i int) bool {
		return bytes.Compare(st.index[i].firstRow, row) > 0
	})
	if i > 0 {
		i--
	}
	return i
}

// ssTableIterator streams the file's cells in order, starting at the
// first cell with Row >= startRow (or the file start when nil).
type ssTableIterator struct {
	st       *ssTable
	meter    *sim.Meter
	blockIdx int
	cells    []Cell
	cellIdx  int
	err      error
}

func (st *ssTable) iterator(startRow []byte, m *sim.Meter) *ssTableIterator {
	it := &ssTableIterator{st: st, meter: m}
	if len(st.index) == 0 {
		it.blockIdx = 0
		return it
	}
	if startRow == nil {
		it.blockIdx = 0
	} else {
		it.blockIdx = st.seekBlock(startRow)
	}
	it.loadBlock()
	if startRow != nil {
		// Skip cells before startRow.
		probe := *seekProbe(startRow)
		for {
			if it.cellIdx < len(it.cells) {
				if CompareCells(&it.cells[it.cellIdx], &probe) >= 0 ||
					bytes.Compare(it.cells[it.cellIdx].Row, startRow) >= 0 {
					break
				}
				it.cellIdx++
				continue
			}
			it.blockIdx++
			if !it.loadBlock() {
				break
			}
		}
	}
	return it
}

// loadBlock loads the current block; returns false past the end.
func (it *ssTableIterator) loadBlock() bool {
	if it.blockIdx >= len(it.st.index) {
		it.cells = nil
		it.cellIdx = 0
		return false
	}
	cells, err := it.st.blockCells(it.st.index[it.blockIdx], it.meter)
	if err != nil {
		it.err = err
		it.cells = nil
		return false
	}
	it.cells = cells
	it.cellIdx = 0
	return true
}

func (it *ssTableIterator) Next() (*Cell, bool) {
	for {
		if it.err != nil {
			return nil, false
		}
		if it.cellIdx < len(it.cells) {
			c := &it.cells[it.cellIdx]
			it.cellIdx++
			return c, true
		}
		it.blockIdx++
		if !it.loadBlock() {
			return nil, false
		}
	}
}

func (it *ssTableIterator) Close() error { return it.err }

// mergeIterator merges several CellIterators into one ordered stream.
// Ties (identical row/col/ts/type from different sources) are broken
// by source priority: lower source index wins and the duplicates are
// all emitted (version resolution happens in the read view).
type mergeIterator struct {
	srcs  []CellIterator
	heads []*Cell
	valid []bool
}

func newMergeIterator(srcs []CellIterator) *mergeIterator {
	m := &mergeIterator{
		srcs:  srcs,
		heads: make([]*Cell, len(srcs)),
		valid: make([]bool, len(srcs)),
	}
	for i, s := range srcs {
		m.heads[i], m.valid[i] = s.Next()
	}
	return m
}

func (m *mergeIterator) Next() (*Cell, bool) {
	best := -1
	for i := range m.srcs {
		if !m.valid[i] {
			continue
		}
		if best == -1 || CompareCells(m.heads[i], m.heads[best]) < 0 {
			best = i
		}
	}
	if best == -1 {
		return nil, false
	}
	c := m.heads[best]
	m.heads[best], m.valid[best] = m.srcs[best].Next()
	return c, true
}

func (m *mergeIterator) Close() error {
	var first error
	for _, s := range m.srcs {
		if err := s.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// writeSSTableFromIterator drains it into a new store file at path.
func writeSSTableFromIterator(fs *dfs.FileSystem, path string, it CellIterator, expectedKeys int, seq uint64, m *sim.Meter) (err error) {
	fw, err := fs.CreateMeter(path, m)
	if err != nil {
		return err
	}
	sw := newSSTableWriter(fw, expectedKeys, seq)
	for {
		c, ok := it.Next()
		if !ok {
			break
		}
		if err := sw.Add(c); err != nil {
			return err
		}
	}
	if err := it.Close(); err != nil {
		return err
	}
	return sw.Finish()
}

var _ io.Closer = (*ssTableIterator)(nil)
