package kvstore

import (
	"fmt"
	"math/rand"
	"testing"
)

// Focused tests of the MVCC version resolver against a brute-force
// model, with explicit timestamps.

type rawOp struct {
	row  string
	qual string
	ts   uint64
	typ  CellType
	val  string
}

// bruteVisible computes the visible view of a set of cells directly
// from the semantics: a tombstone at ts T hides everything with
// ts <= T; the newest surviving put per column wins.
func bruteVisible(ops []rawOp, maxVersions int) map[string][]string {
	out := map[string][]string{}
	rows := map[string]bool{}
	for _, o := range ops {
		rows[o.row] = true
	}
	for row := range rows {
		var rowDel uint64
		for _, o := range ops {
			if o.row == row && o.typ == TypeDeleteRow && o.ts > rowDel {
				rowDel = o.ts
			}
		}
		quals := map[string]bool{}
		for _, o := range ops {
			if o.row == row && o.typ != TypeDeleteRow {
				quals[o.qual] = true
			}
		}
		for q := range quals {
			var colDel uint64
			for _, o := range ops {
				if o.row == row && o.qual == q && o.typ == TypeDeleteColumn && o.ts > colDel {
					colDel = o.ts
				}
			}
			// Collect surviving puts, newest first.
			var puts []rawOp
			for _, o := range ops {
				if o.row == row && o.qual == q && o.typ == TypePut &&
					o.ts > rowDel && o.ts > colDel {
					puts = append(puts, o)
				}
			}
			for i := 0; i < len(puts); i++ {
				for j := i + 1; j < len(puts); j++ {
					if puts[j].ts > puts[i].ts {
						puts[i], puts[j] = puts[j], puts[i]
					}
				}
			}
			if len(puts) > maxVersions {
				puts = puts[:maxVersions]
			}
			for _, p := range puts {
				out[row+":"+q] = append(out[row+":"+q], p.val)
			}
		}
	}
	return out
}

func applyOps(t *testing.T, tbl *Table, ops []rawOp) {
	t.Helper()
	for _, o := range ops {
		c := &Cell{Row: []byte(o.row), Ts: o.ts, Type: o.typ}
		if o.typ != TypeDeleteRow {
			c.Family = "d"
			c.Qualifier = []byte(o.qual)
		}
		if o.typ == TypePut {
			c.Value = []byte(o.val)
		}
		if err := tbl.Put([]*Cell{c}, nil); err != nil {
			t.Fatal(err)
		}
	}
}

func scanVisible(t *testing.T, tbl *Table, maxVersions int) map[string][]string {
	t.Helper()
	out := map[string][]string{}
	sc := tbl.NewScanner(Scan{MaxVersions: maxVersions})
	defer sc.Close()
	for {
		c, ok := sc.Next()
		if !ok {
			break
		}
		key := string(c.Row) + ":" + string(c.Qualifier)
		out[key] = append(out[key], string(c.Value))
	}
	return out
}

func TestResolverAgainstBruteForce(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			var ops []rawOp
			ts := uint64(0)
			for i := 0; i < 300; i++ {
				ts++
				o := rawOp{
					row:  fmt.Sprintf("r%d", rng.Intn(6)),
					qual: fmt.Sprintf("q%d", rng.Intn(3)),
					ts:   ts,
					val:  fmt.Sprintf("v%d", i),
				}
				switch rng.Intn(12) {
				case 0:
					o.typ = TypeDeleteRow
					o.qual = ""
				case 1:
					o.typ = TypeDeleteColumn
				default:
					o.typ = TypePut
				}
				ops = append(ops, o)
			}
			for _, maxV := range []int{1, 2, 3} {
				c := testCluster(t, DefaultStoreConfig())
				tbl, _ := c.CreateTable(fmt.Sprintf("t%d", maxV))
				applyOps(t, tbl, ops)
				// Interleave a flush/compact to exercise file paths.
				tbl.Flush(nil)
				got := scanVisible(t, tbl, maxV)
				want := bruteVisible(ops, maxV)
				if len(got) != len(want) {
					t.Fatalf("maxV=%d: %d visible cols, want %d\ngot %v\nwant %v",
						maxV, len(got), len(want), got, want)
				}
				for k, w := range want {
					g := got[k]
					if len(g) != len(w) {
						t.Fatalf("maxV=%d %s: versions %v, want %v", maxV, k, g, w)
					}
					for i := range w {
						if g[i] != w[i] {
							t.Fatalf("maxV=%d %s[%d]: %q, want %q", maxV, k, i, g[i], w[i])
						}
					}
				}
			}
		})
	}
}

func TestResolverTombstoneAtSameTimestamp(t *testing.T) {
	// A tombstone at ts T hides a put at exactly ts T (HBase
	// semantics: delete covers cells with ts <= T).
	c := testCluster(t, DefaultStoreConfig())
	tbl, _ := c.CreateTable("t")
	applyOps(t, tbl, []rawOp{
		{row: "r", qual: "q", ts: 5, typ: TypePut, val: "v"},
		{row: "r", qual: "q", ts: 5, typ: TypeDeleteColumn},
	})
	if got := scanVisible(t, tbl, 1); len(got) != 0 {
		t.Errorf("same-ts tombstone should hide the put: %v", got)
	}
}

func TestResolverRowTombstoneThenNewerPut(t *testing.T) {
	c := testCluster(t, DefaultStoreConfig())
	tbl, _ := c.CreateTable("t")
	applyOps(t, tbl, []rawOp{
		{row: "r", qual: "q", ts: 3, typ: TypePut, val: "old"},
		{row: "r", ts: 5, typ: TypeDeleteRow},
		{row: "r", qual: "q", ts: 7, typ: TypePut, val: "new"},
	})
	got := scanVisible(t, tbl, 3)
	vals := got["r:q"]
	if len(vals) != 1 || vals[0] != "new" {
		t.Errorf("visible after resurrect = %v", vals)
	}
}
