package kvstore

import (
	"encoding/binary"
	"fmt"
	"math"
)

// bloomFilter is a classic Bloom filter over row keys, equivalent to
// HBase's ROW bloom type. It lets Get skip store files that cannot
// contain the requested row — the reason the paper's UNION READ stays
// cheap when the attached table is nearly empty.
type bloomFilter struct {
	bits []uint64
	k    uint32
	m    uint64 // number of bits
}

// newBloomFilter sizes a filter for n keys at the target false
// positive rate (clamped to sane bounds).
func newBloomFilter(n int, fpRate float64) *bloomFilter {
	if n < 1 {
		n = 1
	}
	if fpRate <= 0 || fpRate >= 1 {
		fpRate = 0.01
	}
	mf := -float64(n) * math.Log(fpRate) / (math.Ln2 * math.Ln2)
	m := uint64(math.Ceil(mf))
	if m < 64 {
		m = 64
	}
	k := uint32(math.Round(mf / float64(n) * math.Ln2))
	if k < 1 {
		k = 1
	}
	if k > 30 {
		k = 30
	}
	return &bloomFilter{bits: make([]uint64, (m+63)/64), k: k, m: m}
}

// hash2 computes two independent 64-bit hashes (FNV-1a and a
// xorshift-mixed variant) for double hashing.
func hash2(key []byte) (uint64, uint64) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h1 := uint64(offset64)
	for _, b := range key {
		h1 ^= uint64(b)
		h1 *= prime64
	}
	h2 := h1
	h2 ^= h2 >> 33
	h2 *= 0xff51afd7ed558ccd
	h2 ^= h2 >> 33
	h2 *= 0xc4ceb9fe1a85ec53
	h2 ^= h2 >> 33
	if h2 == 0 {
		h2 = 0x9e3779b97f4a7c15
	}
	return h1, h2
}

// Add inserts a key.
func (f *bloomFilter) Add(key []byte) {
	h1, h2 := hash2(key)
	for i := uint32(0); i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.m
		f.bits[pos/64] |= 1 << (pos % 64)
	}
}

// MayContain reports whether the key might have been added (false
// positives possible, false negatives not).
func (f *bloomFilter) MayContain(key []byte) bool {
	if f == nil || f.m == 0 {
		return true
	}
	h1, h2 := hash2(key)
	for i := uint32(0); i < f.k; i++ {
		pos := (h1 + uint64(i)*h2) % f.m
		if f.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// Marshal serializes the filter: k, m, then the bit words.
func (f *bloomFilter) Marshal() []byte {
	out := make([]byte, 0, 12+8*len(f.bits))
	out = binary.LittleEndian.AppendUint32(out, f.k)
	out = binary.LittleEndian.AppendUint64(out, f.m)
	for _, w := range f.bits {
		out = binary.LittleEndian.AppendUint64(out, w)
	}
	return out
}

// unmarshalBloom parses a serialized filter.
func unmarshalBloom(b []byte) (*bloomFilter, error) {
	if len(b) < 12 {
		return nil, fmt.Errorf("kvstore: bloom filter too short (%d bytes)", len(b))
	}
	f := &bloomFilter{
		k: binary.LittleEndian.Uint32(b[0:4]),
		m: binary.LittleEndian.Uint64(b[4:12]),
	}
	words := (f.m + 63) / 64
	if uint64(len(b)-12) < words*8 {
		return nil, fmt.Errorf("kvstore: bloom filter truncated (want %d words)", words)
	}
	f.bits = make([]uint64, words)
	for i := range f.bits {
		f.bits[i] = binary.LittleEndian.Uint64(b[12+8*i:])
	}
	return f, nil
}
