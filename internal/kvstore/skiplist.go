package kvstore

import (
	"math/rand"
	"sync"
)

// skiplist is the memtable data structure: a concurrent-read,
// single-structure-locked skip list ordered by CompareCells. HBase's
// MemStore uses a ConcurrentSkipListMap; this is the Go equivalent
// sized for the workload of an attached table.
const maxLevel = 20

type skipNode struct {
	cell Cell
	next [maxLevel]*skipNode
}

type skiplist struct {
	mu    sync.RWMutex
	head  *skipNode
	level int
	size  int // bytes, for flush accounting
	count int // number of cells
	rng   *rand.Rand
}

func newSkiplist() *skiplist {
	return &skiplist{
		head:  &skipNode{},
		level: 1,
		rng:   rand.New(rand.NewSource(0x5eed)),
	}
}

func (s *skiplist) randomLevel() int {
	lvl := 1
	for lvl < maxLevel && s.rng.Intn(4) == 0 {
		lvl++
	}
	return lvl
}

// Insert adds a cell. Duplicate keys (same row/col/ts/type) overwrite
// the value in place, matching HBase upsert semantics.
func (s *skiplist) Insert(c Cell) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var update [maxLevel]*skipNode
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && CompareCells(&x.next[i].cell, &c) < 0 {
			x = x.next[i]
		}
		update[i] = x
	}
	if nx := x.next[0]; nx != nil && CompareCells(&nx.cell, &c) == 0 {
		s.size += len(c.Value) - len(nx.cell.Value)
		nx.cell.Value = c.Value
		return
	}
	lvl := s.randomLevel()
	if lvl > s.level {
		for i := s.level; i < lvl; i++ {
			update[i] = s.head
		}
		s.level = lvl
	}
	n := &skipNode{cell: c}
	for i := 0; i < lvl; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	s.size += c.Size()
	s.count++
}

// SizeBytes returns the approximate memory footprint.
func (s *skiplist) SizeBytes() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.size
}

// Count returns the number of cells.
func (s *skiplist) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.count
}

// seekNode returns the first node whose cell is >= c (nil at end).
func (s *skiplist) seekNode(c *Cell) *skipNode {
	x := s.head
	for i := s.level - 1; i >= 0; i-- {
		for x.next[i] != nil && CompareCells(&x.next[i].cell, c) < 0 {
			x = x.next[i]
		}
	}
	return x.next[0]
}

// skiplistIterator walks the list from a start position. It holds the
// read lock for its lifetime — memtable iterators are short-lived
// (one flush or one scan segment), mirroring MemStore scanner
// semantics where a snapshot is taken.
type skiplistIterator struct {
	s    *skiplist
	node *skipNode
}

// Iterator returns an iterator positioned at the first cell >= start,
// or the beginning when start is nil.
func (s *skiplist) Iterator(start *Cell) *skiplistIterator {
	s.mu.RLock()
	var n *skipNode
	if start == nil {
		n = s.head.next[0]
	} else {
		n = s.seekNode(start)
	}
	return &skiplistIterator{s: s, node: n}
}

func (it *skiplistIterator) Next() (*Cell, bool) {
	if it.node == nil {
		return nil, false
	}
	c := &it.node.cell
	it.node = it.node.next[0]
	return c, true
}

func (it *skiplistIterator) Close() error {
	if it.s != nil {
		it.s.mu.RUnlock()
		it.s = nil
	}
	return nil
}
