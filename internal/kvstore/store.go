package kvstore

import (
	"bytes"
	"fmt"
	"path"
	"sync"

	"dualtable/internal/dfs"
	"dualtable/internal/sim"
)

// store is the storage engine of one region: a memtable, a WAL, and a
// stack of immutable store files (newest first). It is the analog of
// an HBase Store/HRegion storage.
type store struct {
	fs  *dfs.FileSystem
	dir string
	cfg StoreConfig

	mu      sync.RWMutex
	mem     *skiplist
	files   []*ssTable // newest first
	nextSeq uint64
	wal     *wal
	closed  bool
}

// StoreConfig tunes a region store.
type StoreConfig struct {
	// FlushThresholdBytes triggers a memtable flush (HBase default is
	// 128 MB; tests use small values).
	FlushThresholdBytes int
	// MaxVersions retained per column after major compaction.
	MaxVersions int
	// BloomEnabled controls bloom filter usage on Get (ablation knob).
	BloomEnabled bool
	// CompactionThreshold is the store file count that triggers an
	// automatic minor compaction after a flush.
	CompactionThreshold int
	// DisableWAL skips write-ahead logging (bulk loads).
	DisableWAL bool
}

// DefaultStoreConfig mirrors HBase defaults scaled for simulation.
func DefaultStoreConfig() StoreConfig {
	return StoreConfig{
		FlushThresholdBytes: 8 << 20,
		MaxVersions:         3,
		BloomEnabled:        true,
		CompactionThreshold: 5,
	}
}

func openStore(fs *dfs.FileSystem, dir string, cfg StoreConfig) (*store, error) {
	if cfg.FlushThresholdBytes <= 0 {
		cfg.FlushThresholdBytes = DefaultStoreConfig().FlushThresholdBytes
	}
	if cfg.MaxVersions <= 0 {
		cfg.MaxVersions = 3
	}
	if cfg.CompactionThreshold <= 0 {
		cfg.CompactionThreshold = 5
	}
	if err := fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	s := &store{fs: fs, dir: dir, cfg: cfg, mem: newSkiplist()}
	// Open existing store files.
	infos, err := fs.ListFiles(dir)
	if err != nil {
		return nil, err
	}
	for _, fi := range infos {
		if fi.Name == "wal" {
			continue
		}
		st, err := openSSTable(fs, fi.Path, nil)
		if err != nil {
			return nil, fmt.Errorf("kvstore: open %s: %w", fi.Path, err)
		}
		s.files = append(s.files, st)
		if st.seq >= s.nextSeq {
			s.nextSeq = st.seq + 1
		}
	}
	sortFilesBySeqDesc(s.files)
	if !cfg.DisableWAL {
		w, recovered, err := openWAL(fs, path.Join(dir, "wal"))
		if err != nil {
			return nil, err
		}
		s.wal = w
		for i := range recovered {
			s.mem.Insert(recovered[i])
		}
	}
	return s, nil
}

func sortFilesBySeqDesc(files []*ssTable) {
	for i := 1; i < len(files); i++ {
		for j := i; j > 0 && files[j].seq > files[j-1].seq; j-- {
			files[j], files[j-1] = files[j-1], files[j]
		}
	}
}

// put applies a batch of cells: WAL first, then memtable; flushes when
// the memtable exceeds its threshold.
func (s *store) put(cells []*Cell, m *sim.Meter) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return fmt.Errorf("kvstore: store %s is closed", s.dir)
	}
	w := s.wal
	s.mu.Unlock()
	if w != nil {
		if err := w.Append(cells); err != nil {
			return err
		}
	}
	var bytesIn int64
	for _, c := range cells {
		s.mem.Insert(c.Clone())
		bytesIn += int64(c.Size())
		m.KVPut(int64(c.Size()))
	}
	if s.mem.SizeBytes() >= s.cfg.FlushThresholdBytes {
		return s.flush(m)
	}
	return nil
}

// flush writes the memtable to a new store file and truncates the WAL.
func (s *store) flush(m *sim.Meter) error {
	s.mu.Lock()
	if s.mem.Count() == 0 {
		s.mu.Unlock()
		return nil
	}
	old := s.mem
	s.mem = newSkiplist()
	seq := s.nextSeq
	s.nextSeq++
	s.mu.Unlock()

	p := path.Join(s.dir, fmt.Sprintf("sf-%06d", seq))
	it := old.Iterator(nil)
	err := writeSSTableFromIterator(s.fs, p, it, old.Count(), seq, m)
	if err != nil {
		return fmt.Errorf("kvstore: flush to %s: %w", p, err)
	}
	st, err := openSSTable(s.fs, p, nil)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.files = append([]*ssTable{st}, s.files...)
	w := s.wal
	n := len(s.files)
	s.mu.Unlock()
	if w != nil {
		if err := w.Truncate(); err != nil {
			return err
		}
	}
	if n >= s.cfg.CompactionThreshold {
		return s.compact(false, m)
	}
	return nil
}

// get returns all visible cells of one row (latest version per
// column, tombstones applied).
func (s *store) get(row []byte, m *sim.Meter) ([]Cell, error) {
	s.mu.RLock()
	files := append([]*ssTable(nil), s.files...)
	mem := s.mem
	s.mu.RUnlock()

	m.KVGet(0)
	probe := seekProbe(row)
	var srcs []CellIterator
	srcs = append(srcs, &boundedIterator{it: mem.Iterator(probe), row: row})
	for _, f := range files {
		if s.cfg.BloomEnabled && !f.bloom.MayContain(row) {
			continue
		}
		srcs = append(srcs, &boundedIterator{it: f.iterator(row, m), row: row})
	}
	merged := newMergeIterator(srcs)
	defer merged.Close()
	rv := newVersionResolver(merged, s.cfg.MaxVersions)
	var out []Cell
	for {
		c, ok := rv.Next()
		if !ok {
			break
		}
		out = append(out, c.Clone())
	}
	return out, rv.Err()
}

// boundedIterator restricts an iterator to a single row.
type boundedIterator struct {
	it  CellIterator
	row []byte
}

func (b *boundedIterator) Next() (*Cell, bool) {
	c, ok := b.it.Next()
	if !ok || !bytes.Equal(c.Row, b.row) {
		return nil, false
	}
	return c, true
}

func (b *boundedIterator) Close() error { return b.it.Close() }

// scan returns a resolved iterator over [start, end) (nil end = to
// the last row; nil start = from the first row).
func (s *store) scan(start, end []byte, m *sim.Meter, maxVersions int) *scanIterator {
	s.mu.RLock()
	files := append([]*ssTable(nil), s.files...)
	mem := s.mem
	s.mu.RUnlock()

	if maxVersions <= 0 {
		maxVersions = 1
	}
	m.KVSeek()
	var probe *Cell
	if start != nil {
		probe = seekProbe(start)
	}
	var srcs []CellIterator
	srcs = append(srcs, mem.Iterator(probe))
	for _, f := range files {
		srcs = append(srcs, f.iterator(start, m))
	}
	merged := newMergeIterator(srcs)
	return &scanIterator{
		rv:    newVersionResolver(merged, maxVersions),
		end:   end,
		meter: m,
	}
}

// scanIterator yields visible cells within the range, charging scan
// bytes to the meter.
type scanIterator struct {
	rv    *versionResolver
	end   []byte
	meter *sim.Meter
	done  bool
}

// Next returns the next visible cell.
func (it *scanIterator) Next() (*Cell, bool) {
	if it.done {
		return nil, false
	}
	c, ok := it.rv.Next()
	if !ok {
		it.done = true
		return nil, false
	}
	if it.end != nil && bytes.Compare(c.Row, it.end) >= 0 {
		it.done = true
		return nil, false
	}
	it.meter.KVScan(int64(c.Size()))
	return c, true
}

// Close releases the underlying iterators.
func (it *scanIterator) Close() error {
	it.done = true
	return it.rv.Close()
}

// Err returns a deferred iteration error.
func (it *scanIterator) Err() error { return it.rv.Err() }

// compact merges store files. Minor compaction merges the current
// files keeping tombstones; major compaction first flushes the
// memtable, then merges everything, dropping tombstones and versions
// beyond MaxVersions.
func (s *store) compact(major bool, m *sim.Meter) error {
	if major {
		if err := s.flush(m); err != nil {
			return err
		}
	}
	s.mu.Lock()
	files := append([]*ssTable(nil), s.files...)
	if len(files) < 2 && !major {
		s.mu.Unlock()
		return nil
	}
	if len(files) == 0 {
		s.mu.Unlock()
		return nil
	}
	seq := s.nextSeq
	s.nextSeq++
	s.mu.Unlock()

	var srcs []CellIterator
	var expected int
	for _, f := range files {
		srcs = append(srcs, f.iterator(nil, m))
		expected += int(f.entries)
	}
	var it CellIterator = newMergeIterator(srcs)
	it = &dedupIterator{it: it}
	if major {
		it = newCompactionFilter(it, s.cfg.MaxVersions)
	}
	p := path.Join(s.dir, fmt.Sprintf("sf-%06d", seq))
	if err := writeSSTableFromIterator(s.fs, p, it, expected+1, seq, m); err != nil {
		return fmt.Errorf("kvstore: compact to %s: %w", p, err)
	}
	st, err := openSSTable(s.fs, p, nil)
	if err != nil {
		return err
	}
	s.mu.Lock()
	// Replace exactly the files we merged; new flushes that landed
	// meanwhile stay.
	merged := make(map[*ssTable]bool, len(files))
	for _, f := range files {
		merged[f] = true
	}
	var kept []*ssTable
	for _, f := range s.files {
		if !merged[f] {
			kept = append(kept, f)
		}
	}
	s.files = append(kept, st)
	sortFilesBySeqDesc(s.files)
	s.mu.Unlock()
	for _, f := range files {
		if err := s.fs.Delete(f.path, false); err != nil {
			return err
		}
	}
	return nil
}

// dedupIterator removes exact-duplicate keys (same row, column, ts,
// type) that can appear when merging overlapping store files; the
// first (newest file) copy wins.
type dedupIterator struct {
	it   CellIterator
	have bool
	prev Cell
}

func (d *dedupIterator) Next() (*Cell, bool) {
	for {
		c, ok := d.it.Next()
		if !ok {
			return nil, false
		}
		if d.have && CompareCells(c, &d.prev) == 0 {
			continue
		}
		d.prev = c.Clone()
		d.have = true
		return c, true
	}
}

func (d *dedupIterator) Close() error { return d.it.Close() }

// size returns the total on-DFS size of the store files plus the
// memtable estimate.
func (s *store) size() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var total int64
	for _, f := range s.files {
		total += f.size
	}
	return total + int64(s.mem.SizeBytes())
}

// entryCount estimates the number of stored cells (pre-resolution).
func (s *store) entryCount() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	total := int64(s.mem.Count())
	for _, f := range s.files {
		total += int64(f.entries)
	}
	return total
}

// fileCount returns the number of store files.
func (s *store) fileCount() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.files)
}

// middleRow estimates the median row key for region splitting: the
// first row of the middle block of the largest store file.
func (s *store) middleRow() []byte {
	s.mu.RLock()
	defer s.mu.RUnlock()
	var largest *ssTable
	for _, f := range s.files {
		if largest == nil || f.size > largest.size {
			largest = f
		}
	}
	if largest == nil || len(largest.index) == 0 {
		return nil
	}
	return append([]byte(nil), largest.index[len(largest.index)/2].firstRow...)
}

func (s *store) close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	if s.wal != nil {
		return s.wal.Close()
	}
	return nil
}
