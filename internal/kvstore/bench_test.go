package kvstore

import (
	"fmt"
	"testing"

	"dualtable/internal/dfs"
)

// Ablation: bloom filters on attached-table gets. DualTable's UNION
// READ merge path does not need gets, but the cost model's
// AttachedGetCost and HBase-style point lookups do — the bloom filter
// is what keeps a get from touching every store file.

func benchTable(b *testing.B, bloom bool, files int) *Table {
	b.Helper()
	fs := dfs.New(dfs.Config{BlockSize: 1 << 20, Replication: 1, DataNodes: 2})
	cfg := DefaultStoreConfig()
	cfg.BloomEnabled = bloom
	cfg.CompactionThreshold = 1000 // keep the file stack
	c, err := NewCluster(fs, "/hbase", cfg)
	if err != nil {
		b.Fatal(err)
	}
	tbl, err := c.CreateTable("t")
	if err != nil {
		b.Fatal(err)
	}
	// files store files, disjoint key ranges, 2000 rows each.
	for f := 0; f < files; f++ {
		var cells []*Cell
		for i := 0; i < 2000; i++ {
			cells = append(cells, &Cell{
				Row:       []byte(fmt.Sprintf("f%02d-row%05d", f, i)),
				Family:    "d",
				Qualifier: []byte("q"),
				Type:      TypePut,
				Value:     []byte("value"),
			})
		}
		if err := tbl.Put(cells, nil); err != nil {
			b.Fatal(err)
		}
		if err := tbl.Flush(nil); err != nil {
			b.Fatal(err)
		}
	}
	return tbl
}

func benchGets(b *testing.B, bloom bool) {
	tbl := benchTable(b, bloom, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := []byte(fmt.Sprintf("f%02d-row%05d", i%8, i%2000))
		cells, err := tbl.Get(key, nil)
		if err != nil || len(cells) != 1 {
			b.Fatalf("get %s: %v %v", key, cells, err)
		}
	}
}

// BenchmarkAblationBloomOn measures point gets across 8 store files
// with bloom filters pruning non-matching files.
func BenchmarkAblationBloomOn(b *testing.B) { benchGets(b, true) }

// BenchmarkAblationBloomOff is the same workload with bloom filters
// disabled: every get probes every store file.
func BenchmarkAblationBloomOff(b *testing.B) { benchGets(b, false) }

// BenchmarkPutThroughput measures raw batched put throughput.
func BenchmarkPutThroughput(b *testing.B) {
	fs := dfs.New(dfs.Config{BlockSize: 1 << 20, Replication: 1, DataNodes: 2})
	c, err := NewCluster(fs, "/hbase", DefaultStoreConfig())
	if err != nil {
		b.Fatal(err)
	}
	tbl, _ := c.CreateTable("t")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cells := make([]*Cell, 100)
		for j := range cells {
			cells[j] = &Cell{
				Row:       []byte(fmt.Sprintf("row%09d", i*100+j)),
				Family:    "d",
				Qualifier: []byte("q"),
				Type:      TypePut,
				Value:     []byte("0123456789abcdef"),
			}
		}
		if err := tbl.Put(cells, nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScanThroughput measures sorted range-scan throughput over
// memtable + store files.
func BenchmarkScanThroughput(b *testing.B) {
	tbl := benchTable(b, true, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc := tbl.NewScanner(Scan{})
		n := 0
		for {
			if _, ok := sc.Next(); !ok {
				break
			}
			n++
		}
		sc.Close()
		if n != 8000 {
			b.Fatalf("scanned %d", n)
		}
	}
}
