package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"path"
	"sort"
	"sync"
	"sync/atomic"

	"dualtable/internal/dfs"
	"dualtable/internal/sim"
)

// Errors returned by the table layer.
var (
	ErrTableExists   = errors.New("kvstore: table already exists")
	ErrTableNotFound = errors.New("kvstore: table not found")
)

// Cluster manages named tables on one DFS directory tree — the HBase
// master role. A cluster-global logical timestamp oracle provides
// MVCC versions for cells written without an explicit timestamp.
type Cluster struct {
	fs      *dfs.FileSystem
	baseDir string
	defCfg  StoreConfig

	mu     sync.Mutex
	tables map[string]*Table
	tsOrac atomic.Uint64
}

// NewCluster creates (or reopens) a cluster rooted at baseDir.
func NewCluster(fs *dfs.FileSystem, baseDir string, def StoreConfig) (*Cluster, error) {
	if err := fs.MkdirAll(baseDir); err != nil {
		return nil, err
	}
	return &Cluster{fs: fs, baseDir: baseDir, defCfg: def, tables: map[string]*Table{}}, nil
}

// NextTs returns the next logical timestamp.
func (c *Cluster) NextTs() uint64 { return c.tsOrac.Add(1) }

// CreateTable creates a new table with the cluster default store
// configuration (or the optional override).
func (c *Cluster) CreateTable(name string, cfg ...StoreConfig) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tables[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrTableExists, name)
	}
	conf := c.defCfg
	if len(cfg) > 0 {
		conf = cfg[0]
	}
	dir := path.Join(c.baseDir, name)
	if c.fs.Exists(dir) {
		return nil, fmt.Errorf("%w: %s (directory exists)", ErrTableExists, name)
	}
	if err := c.fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	t := &Table{cluster: c, name: name, dir: dir, cfg: conf, splitThreshold: 1 << 62}
	st, err := openStore(c.fs, path.Join(dir, "r0"), conf)
	if err != nil {
		return nil, err
	}
	t.regions = []*Region{{id: 0, store: st}}
	t.nextRegionID = 1
	c.tables[name] = t
	return t, nil
}

// Table returns an open table by name.
func (c *Cluster) Table(name string) (*Table, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tables[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrTableNotFound, name)
	}
	return t, nil
}

// HasTable reports whether the named table exists.
func (c *Cluster) HasTable(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.tables[name]
	return ok
}

// DropTable closes and removes a table and its data.
func (c *Cluster) DropTable(name string) error {
	c.mu.Lock()
	t, ok := c.tables[name]
	if ok {
		delete(c.tables, name)
	}
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrTableNotFound, name)
	}
	t.mu.Lock()
	for _, r := range t.regions {
		r.store.close()
	}
	t.regions = nil
	t.mu.Unlock()
	return c.fs.Delete(t.dir, true)
}

// TruncateTable drops and recreates a table, keeping its config.
func (c *Cluster) TruncateTable(name string) error {
	c.mu.Lock()
	t, ok := c.tables[name]
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrTableNotFound, name)
	}
	cfg := t.cfg
	if err := c.DropTable(name); err != nil {
		return err
	}
	_, err := c.CreateTable(name, cfg)
	return err
}

// TableNames lists the open tables, sorted.
func (c *Cluster) TableNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.tables))
	for n := range c.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Region is one key-range shard of a table.
type Region struct {
	id    int
	start []byte // inclusive; nil = -inf
	end   []byte // exclusive; nil = +inf
	store *store
}

// Start returns the region's inclusive start key (nil = unbounded).
func (r *Region) Start() []byte { return r.start }

// End returns the region's exclusive end key (nil = unbounded).
func (r *Region) End() []byte { return r.end }

// Table is a sorted, range-partitioned map of cells, the client-facing
// analog of an HBase table.
type Table struct {
	cluster *Cluster
	name    string
	dir     string
	cfg     StoreConfig

	mu             sync.RWMutex
	regions        []*Region // sorted by start key
	nextRegionID   int
	splitThreshold int64
}

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// SetSplitThreshold enables automatic region splitting once a region
// exceeds n bytes (disabled by default).
func (t *Table) SetSplitThreshold(n int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.splitThreshold = n
}

// regionFor locates the region owning the row. Caller must not hold
// t.mu.
func (t *Table) regionFor(row []byte) *Region {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return t.regionForLocked(row)
}

func (t *Table) regionForLocked(row []byte) *Region {
	i := sort.Search(len(t.regions), func(i int) bool {
		s := t.regions[i].start
		return s != nil && bytes.Compare(s, row) > 0
	})
	if i > 0 {
		i--
	}
	return t.regions[i]
}

// Put writes a batch of put cells. Cells with Ts == 0 get a fresh
// logical timestamp (one per batch, so a batch is atomic in version
// space).
func (t *Table) Put(cells []*Cell, m *sim.Meter) error {
	if len(cells) == 0 {
		return nil
	}
	var batchTs uint64
	for _, c := range cells {
		if c.Ts == 0 {
			if batchTs == 0 {
				batchTs = t.cluster.NextTs()
			}
			c.Ts = batchTs
		}
		if c.Type != TypePut && c.Type != TypeDeleteRow && c.Type != TypeDeleteColumn {
			return fmt.Errorf("kvstore: bad cell type %v", c.Type)
		}
	}
	// Group by region.
	groups := map[*Region][]*Cell{}
	for _, c := range cells {
		r := t.regionFor(c.Row)
		groups[r] = append(groups[r], c)
	}
	for r, batch := range groups {
		if err := r.store.put(batch, m); err != nil {
			return err
		}
		t.maybeSplit(r, m)
	}
	return nil
}

// PutRow is a convenience writing several column values of one row.
func (t *Table) PutRow(row []byte, family string, qualValues map[string][]byte, m *sim.Meter) error {
	cells := make([]*Cell, 0, len(qualValues))
	for q, v := range qualValues {
		cells = append(cells, &Cell{Row: row, Family: family, Qualifier: []byte(q), Type: TypePut, Value: v})
	}
	return t.Put(cells, m)
}

// DeleteRow writes a row tombstone hiding everything at or before the
// current logical time.
func (t *Table) DeleteRow(row []byte, m *sim.Meter) error {
	return t.Put([]*Cell{{Row: row, Type: TypeDeleteRow}}, m)
}

// DeleteColumn writes a column tombstone.
func (t *Table) DeleteColumn(row []byte, family string, qualifier []byte, m *sim.Meter) error {
	return t.Put([]*Cell{{Row: row, Family: family, Qualifier: qualifier, Type: TypeDeleteColumn}}, m)
}

// Get returns the visible cells of one row (empty if absent/deleted).
func (t *Table) Get(row []byte, m *sim.Meter) ([]Cell, error) {
	return t.regionFor(row).store.get(row, m)
}

// Scan describes a range read.
type Scan struct {
	Start       []byte // inclusive; nil = first row
	End         []byte // exclusive; nil = last row
	MaxVersions int    // versions per column (default 1)
	Meter       *sim.Meter
}

// Scanner iterates visible cells of a table range, across regions.
type Scanner struct {
	table   *Table
	scan    Scan
	regions []*Region
	regIdx  int
	cur     *scanIterator
	err     error
}

// NewScanner opens a scanner over the range.
func (t *Table) NewScanner(s Scan) *Scanner {
	t.mu.RLock()
	regions := append([]*Region(nil), t.regions...)
	t.mu.RUnlock()
	// Prune regions outside the range.
	var keep []*Region
	for _, r := range regions {
		if s.End != nil && r.start != nil && bytes.Compare(r.start, s.End) >= 0 {
			continue
		}
		if s.Start != nil && r.end != nil && bytes.Compare(r.end, s.Start) <= 0 {
			continue
		}
		keep = append(keep, r)
	}
	return &Scanner{table: t, scan: s, regions: keep}
}

// Next returns the next visible cell in row order.
func (sc *Scanner) Next() (*Cell, bool) {
	for {
		if sc.cur == nil {
			if sc.regIdx >= len(sc.regions) {
				return nil, false
			}
			r := sc.regions[sc.regIdx]
			start := sc.scan.Start
			if r.start != nil && (start == nil || bytes.Compare(r.start, start) > 0) {
				start = r.start
			}
			end := sc.scan.End
			if r.end != nil && (end == nil || bytes.Compare(r.end, end) < 0) {
				end = r.end
			}
			sc.cur = r.store.scan(start, end, sc.scan.Meter, sc.scan.MaxVersions)
		}
		c, ok := sc.cur.Next()
		if ok {
			return c, true
		}
		if err := sc.cur.Err(); err != nil && sc.err == nil {
			sc.err = err
		}
		sc.cur.Close()
		sc.cur = nil
		sc.regIdx++
	}
}

// Close releases the scanner.
func (sc *Scanner) Close() error {
	if sc.cur != nil {
		sc.cur.Close()
		sc.cur = nil
	}
	sc.regIdx = len(sc.regions)
	return sc.err
}

// Err returns a deferred scan error.
func (sc *Scanner) Err() error { return sc.err }

// RowResult is one row's visible cells.
type RowResult struct {
	Row   []byte
	Cells []Cell
}

// Value returns the row's value for family:qualifier, or nil.
func (r *RowResult) Value(family string, qualifier []byte) []byte {
	for i := range r.Cells {
		if r.Cells[i].Family == family && bytes.Equal(r.Cells[i].Qualifier, qualifier) {
			return r.Cells[i].Value
		}
	}
	return nil
}

// RowScanner groups a Scanner's cells into rows.
type RowScanner struct {
	sc      *Scanner
	pending *Cell
	done    bool
}

// NewRowScanner opens a row-grouping scanner over the range.
func (t *Table) NewRowScanner(s Scan) *RowScanner {
	return &RowScanner{sc: t.NewScanner(s)}
}

// Next returns the next row.
func (rs *RowScanner) Next() (RowResult, bool) {
	if rs.done {
		return RowResult{}, false
	}
	var res RowResult
	for {
		var c *Cell
		var ok bool
		if rs.pending != nil {
			c, rs.pending = rs.pending, nil
			ok = true
		} else {
			c, ok = rs.sc.Next()
		}
		if !ok {
			rs.done = true
			if res.Row == nil {
				return RowResult{}, false
			}
			return res, true
		}
		if res.Row == nil {
			res.Row = append([]byte(nil), c.Row...)
		} else if !bytes.Equal(res.Row, c.Row) {
			cp := c.Clone()
			rs.pending = &cp
			return res, true
		}
		res.Cells = append(res.Cells, c.Clone())
	}
}

// Close releases the scanner.
func (rs *RowScanner) Close() error {
	rs.done = true
	return rs.sc.Close()
}

// Flush forces all regions' memtables to store files.
func (t *Table) Flush(m *sim.Meter) error {
	t.mu.RLock()
	regions := append([]*Region(nil), t.regions...)
	t.mu.RUnlock()
	for _, r := range regions {
		if err := r.store.flush(m); err != nil {
			return err
		}
	}
	return nil
}

// Compact runs compaction on all regions (major drops tombstones).
func (t *Table) Compact(major bool, m *sim.Meter) error {
	t.mu.RLock()
	regions := append([]*Region(nil), t.regions...)
	t.mu.RUnlock()
	for _, r := range regions {
		if err := r.store.compact(major, m); err != nil {
			return err
		}
	}
	return nil
}

// Size returns the approximate stored byte size across regions.
func (t *Table) Size() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var total int64
	for _, r := range t.regions {
		total += r.store.size()
	}
	return total
}

// EntryCount returns the raw (unresolved) cell count across regions.
func (t *Table) EntryCount() int64 {
	t.mu.RLock()
	defer t.mu.RUnlock()
	var total int64
	for _, r := range t.regions {
		total += r.store.entryCount()
	}
	return total
}

// RegionCount returns the number of regions.
func (t *Table) RegionCount() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.regions)
}

// Regions returns a snapshot of the table's regions in key order.
func (t *Table) Regions() []*Region {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return append([]*Region(nil), t.regions...)
}

// maybeSplit splits the region when it exceeds the split threshold.
func (t *Table) maybeSplit(r *Region, m *sim.Meter) {
	t.mu.RLock()
	threshold := t.splitThreshold
	t.mu.RUnlock()
	if threshold <= 0 || r.store.size() < threshold {
		return
	}
	_ = t.SplitRegion(r, m) // best effort; a failed split keeps one big region
}

// SplitRegion splits r at its estimated median row key into two
// regions, rewriting the store files. Returns an error when no valid
// split point exists.
func (t *Table) SplitRegion(r *Region, m *sim.Meter) error {
	if err := r.store.flush(m); err != nil {
		return err
	}
	mid := r.store.middleRow()
	if mid == nil {
		return fmt.Errorf("kvstore: region %d has no split point", r.id)
	}
	if r.start != nil && bytes.Compare(mid, r.start) <= 0 {
		return fmt.Errorf("kvstore: split point below region start")
	}
	if r.end != nil && bytes.Compare(mid, r.end) >= 0 {
		return fmt.Errorf("kvstore: split point beyond region end")
	}

	t.mu.Lock()
	idA, idB := t.nextRegionID, t.nextRegionID+1
	t.nextRegionID += 2
	t.mu.Unlock()

	mkChild := func(id int, lo, hi []byte) (*Region, error) {
		st, err := openStore(t.cluster.fs, path.Join(t.dir, fmt.Sprintf("r%d", id)), t.cfg)
		if err != nil {
			return nil, err
		}
		// Copy this half's raw cells (all versions and tombstones).
		src := r.store.scanRaw(lo, hi, m)
		batch := make([]*Cell, 0, 1024)
		flushBatch := func() error {
			if len(batch) == 0 {
				return nil
			}
			err := st.put(batch, m)
			batch = batch[:0]
			return err
		}
		for {
			c, ok := src.Next()
			if !ok {
				break
			}
			cp := c.Clone()
			batch = append(batch, &cp)
			if len(batch) == 1024 {
				if err := flushBatch(); err != nil {
					src.Close()
					return nil, err
				}
			}
		}
		src.Close()
		if err := flushBatch(); err != nil {
			return nil, err
		}
		if err := st.flush(m); err != nil {
			return nil, err
		}
		return &Region{id: id, start: lo, end: hi, store: st}, nil
	}
	left, err := mkChild(idA, r.start, mid)
	if err != nil {
		return err
	}
	right, err := mkChild(idB, mid, r.end)
	if err != nil {
		return err
	}

	t.mu.Lock()
	for i, reg := range t.regions {
		if reg == r {
			t.regions = append(t.regions[:i], append([]*Region{left, right}, t.regions[i+1:]...)...)
			break
		}
	}
	t.mu.Unlock()
	r.store.close()
	return t.cluster.fs.Delete(r.store.dir, true)
}

// scanRaw iterates the raw (unresolved) cells of [start, end) across
// memtable and files — every version and tombstone, deduplicated.
func (s *store) scanRaw(start, end []byte, m *sim.Meter) CellIterator {
	s.mu.RLock()
	files := append([]*ssTable(nil), s.files...)
	mem := s.mem
	s.mu.RUnlock()
	var probe *Cell
	if start != nil {
		probe = seekProbe(start)
	}
	var srcs []CellIterator
	srcs = append(srcs, mem.Iterator(probe))
	for _, f := range files {
		srcs = append(srcs, f.iterator(start, m))
	}
	return &rangeLimitIterator{it: &dedupIterator{it: newMergeIterator(srcs)}, end: end}
}

// rangeLimitIterator stops at the end key.
type rangeLimitIterator struct {
	it  CellIterator
	end []byte
}

func (r *rangeLimitIterator) Next() (*Cell, bool) {
	c, ok := r.it.Next()
	if !ok {
		return nil, false
	}
	if r.end != nil && bytes.Compare(c.Row, r.end) >= 0 {
		return nil, false
	}
	return c, true
}

func (r *rangeLimitIterator) Close() error { return r.it.Close() }
