package kvstore

import (
	"bytes"
)

// versionResolver turns a merged, sorted, possibly-duplicated cell
// stream into the visible view: the newest MaxVersions puts per
// column, with row and column tombstones applied (a tombstone at
// timestamp T hides all versions with Ts <= T). It relies on
// CompareCells order: rows ascending, row tombstones first within a
// row, then columns, newest version first.
type versionResolver struct {
	it          CellIterator
	maxVersions int

	curRow   []byte
	rowDelTs uint64
	haveRow  bool

	curFam   string
	curQual  []byte
	haveCol  bool
	colDelTs uint64
	emitted  int

	prev     Cell
	havePrev bool
	err      error
}

func newVersionResolver(it CellIterator, maxVersions int) *versionResolver {
	if maxVersions <= 0 {
		maxVersions = 1
	}
	return &versionResolver{it: it, maxVersions: maxVersions}
}

// Next returns the next visible put cell.
func (v *versionResolver) Next() (*Cell, bool) {
	for {
		c, ok := v.it.Next()
		if !ok {
			return nil, false
		}
		// Drop exact duplicates from overlapping sources.
		if v.havePrev && CompareCells(c, &v.prev) == 0 {
			continue
		}
		v.prev = c.Clone()
		v.havePrev = true

		if !v.haveRow || !bytes.Equal(c.Row, v.curRow) {
			v.curRow = append(v.curRow[:0], c.Row...)
			v.haveRow = true
			v.rowDelTs = 0
			v.haveCol = false
		}
		if c.Type == TypeDeleteRow {
			if c.Ts > v.rowDelTs {
				v.rowDelTs = c.Ts
			}
			continue
		}
		if !v.haveCol || c.Family != v.curFam || !bytes.Equal(c.Qualifier, v.curQual) {
			v.curFam = c.Family
			v.curQual = append(v.curQual[:0], c.Qualifier...)
			v.haveCol = true
			v.colDelTs = 0
			v.emitted = 0
		}
		switch c.Type {
		case TypeDeleteColumn:
			if c.Ts > v.colDelTs {
				v.colDelTs = c.Ts
			}
		case TypePut:
			if c.Ts <= v.rowDelTs || c.Ts <= v.colDelTs {
				continue
			}
			if v.emitted >= v.maxVersions {
				continue
			}
			v.emitted++
			return c, true
		}
	}
}

// Close closes the source.
func (v *versionResolver) Close() error {
	err := v.it.Close()
	if v.err == nil {
		v.err = err
	}
	return err
}

// Err returns the first error observed.
func (v *versionResolver) Err() error { return v.err }

// compactionFilter emits the cells a major compaction should retain:
// the visible puts (per versionResolver) — tombstones and shadowed
// versions are dropped. Implemented as a CellIterator so it can feed
// writeSSTableFromIterator directly.
type compactionFilter struct {
	rv *versionResolver
}

func newCompactionFilter(it CellIterator, maxVersions int) *compactionFilter {
	return &compactionFilter{rv: newVersionResolver(it, maxVersions)}
}

func (f *compactionFilter) Next() (*Cell, bool) { return f.rv.Next() }
func (f *compactionFilter) Close() error        { return f.rv.Close() }
