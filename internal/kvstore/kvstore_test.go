package kvstore

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"dualtable/internal/dfs"
	"dualtable/internal/sim"
)

func testCluster(t *testing.T, cfg StoreConfig) *Cluster {
	t.Helper()
	fs := dfs.New(dfs.Config{BlockSize: 4096, Replication: 1, DataNodes: 2})
	c, err := NewCluster(fs, "/hbase", cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func put(t *testing.T, tbl *Table, row, qual, val string) {
	t.Helper()
	err := tbl.Put([]*Cell{{Row: []byte(row), Family: "d", Qualifier: []byte(qual), Type: TypePut, Value: []byte(val)}}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func getVal(t *testing.T, tbl *Table, row, qual string) (string, bool) {
	t.Helper()
	cells, err := tbl.Get([]byte(row), nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cells {
		if string(c.Qualifier) == qual {
			return string(c.Value), true
		}
	}
	return "", false
}

func TestCompareCellsOrdering(t *testing.T) {
	mk := func(row, qual string, ts uint64, typ CellType) *Cell {
		return &Cell{Row: []byte(row), Family: "d", Qualifier: []byte(qual), Ts: ts, Type: typ}
	}
	ordered := []*Cell{
		mk("a", "", 5, TypeDeleteRow), // row tombstones first, newest first
		mk("a", "", 2, TypeDeleteRow),
		mk("a", "q1", 9, TypePut),
		mk("a", "q1", 3, TypeDeleteColumn), // same ts: tombstone before put
		mk("a", "q1", 3, TypePut),
		mk("a", "q2", 1, TypePut),
		mk("b", "q1", 100, TypePut),
	}
	for i := 0; i < len(ordered); i++ {
		for j := 0; j < len(ordered); j++ {
			got := CompareCells(ordered[i], ordered[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if (want < 0 && got >= 0) || (want > 0 && got <= 0) || (want == 0 && got != 0) {
				t.Errorf("CompareCells(%v, %v) = %d, want sign %d", ordered[i], ordered[j], got, want)
			}
		}
	}
}

func TestCellEncodeRoundtrip(t *testing.T) {
	c := Cell{Row: []byte("row\x00key"), Family: "fam", Qualifier: []byte("q"), Ts: 12345, Type: TypeDeleteColumn, Value: []byte("value bytes")}
	enc := appendCell(nil, &c)
	dec, n, err := decodeCell(enc)
	if err != nil || n != len(enc) {
		t.Fatalf("decode: %v, consumed %d of %d", err, n, len(enc))
	}
	if CompareCells(&dec, &c) != 0 || !bytes.Equal(dec.Value, c.Value) || dec.Type != c.Type {
		t.Errorf("roundtrip mismatch: %v vs %v", dec, c)
	}
}

func TestDecodeCellErrors(t *testing.T) {
	c := Cell{Row: []byte("r"), Family: "f", Qualifier: []byte("q"), Ts: 1, Type: TypePut, Value: []byte("v")}
	enc := appendCell(nil, &c)
	for cut := 1; cut < len(enc); cut++ {
		if _, _, err := decodeCell(enc[:cut]); err == nil {
			t.Errorf("truncation at %d should fail", cut)
		}
	}
}

func TestBloomFilter(t *testing.T) {
	f := newBloomFilter(1000, 0.01)
	for i := 0; i < 1000; i++ {
		f.Add([]byte(fmt.Sprintf("key-%d", i)))
	}
	for i := 0; i < 1000; i++ {
		if !f.MayContain([]byte(fmt.Sprintf("key-%d", i))) {
			t.Fatalf("false negative for key-%d", i)
		}
	}
	fp := 0
	for i := 0; i < 10000; i++ {
		if f.MayContain([]byte(fmt.Sprintf("other-%d", i))) {
			fp++
		}
	}
	if fp > 300 { // 3% upper bound for a 1% target
		t.Errorf("false positive rate too high: %d/10000", fp)
	}
	enc := f.Marshal()
	f2, err := unmarshalBloom(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !f2.MayContain([]byte("key-1")) {
		t.Error("roundtripped filter lost key")
	}
	if _, err := unmarshalBloom([]byte{1, 2}); err == nil {
		t.Error("short bloom should fail")
	}
}

func TestSkiplistOrderedInsert(t *testing.T) {
	sl := newSkiplist()
	rng := rand.New(rand.NewSource(7))
	n := 500
	for i := 0; i < n; i++ {
		sl.Insert(Cell{Row: []byte(fmt.Sprintf("r%04d", rng.Intn(200))), Family: "d", Qualifier: []byte("q"), Ts: uint64(i + 1), Type: TypePut, Value: []byte("v")})
	}
	it := sl.Iterator(nil)
	defer it.Close()
	var prev *Cell
	count := 0
	for {
		c, ok := it.Next()
		if !ok {
			break
		}
		if prev != nil && CompareCells(prev, c) > 0 {
			t.Fatalf("out of order: %v after %v", c, prev)
		}
		cp := c.Clone()
		prev = &cp
		count++
	}
	if count != n {
		t.Errorf("iterated %d cells, want %d", count, n)
	}
	if sl.Count() != n {
		t.Errorf("Count = %d, want %d", sl.Count(), n)
	}
}

func TestSkiplistUpsertSameKey(t *testing.T) {
	sl := newSkiplist()
	c := Cell{Row: []byte("r"), Family: "d", Qualifier: []byte("q"), Ts: 5, Type: TypePut, Value: []byte("v1")}
	sl.Insert(c)
	c2 := c
	c2.Value = []byte("v2-longer")
	sl.Insert(c2)
	if sl.Count() != 1 {
		t.Errorf("upsert should not add entries: count=%d", sl.Count())
	}
	it := sl.Iterator(nil)
	defer it.Close()
	got, _ := it.Next()
	if string(got.Value) != "v2-longer" {
		t.Errorf("upsert value = %q", got.Value)
	}
}

func TestSkiplistSeek(t *testing.T) {
	sl := newSkiplist()
	for i := 0; i < 100; i += 2 {
		sl.Insert(Cell{Row: []byte(fmt.Sprintf("r%03d", i)), Family: "d", Qualifier: []byte("q"), Ts: 1, Type: TypePut})
	}
	it := sl.Iterator(&Cell{Row: []byte("r051"), Type: TypeDeleteRow})
	defer it.Close()
	c, ok := it.Next()
	if !ok || string(c.Row) != "r052" {
		t.Errorf("seek landed on %v", c)
	}
}

func TestSSTableWriteReadSeek(t *testing.T) {
	fs := dfs.New(dfs.Config{BlockSize: 1 << 20, Replication: 1, DataNodes: 1})
	fs.MkdirAll("/t")
	w, err := fs.Create("/t/sf-1")
	if err != nil {
		t.Fatal(err)
	}
	sw := newSSTableWriter(w, 1000, 7)
	n := 1000
	for i := 0; i < n; i++ {
		c := Cell{Row: []byte(fmt.Sprintf("row%05d", i)), Family: "d", Qualifier: []byte("q"), Ts: uint64(i + 1), Type: TypePut, Value: bytes.Repeat([]byte("x"), 20)}
		if err := sw.Add(&c); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Finish(); err != nil {
		t.Fatal(err)
	}
	st, err := openSSTable(fs, "/t/sf-1", nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.entries != uint64(n) || st.seq != 7 {
		t.Errorf("entries=%d seq=%d", st.entries, st.seq)
	}
	if len(st.index) < 2 {
		t.Errorf("expected multiple blocks, got %d", len(st.index))
	}
	// Full iteration.
	it := st.iterator(nil, nil)
	count := 0
	for {
		_, ok := it.Next()
		if !ok {
			break
		}
		count++
	}
	if count != n {
		t.Errorf("full scan = %d cells, want %d", count, n)
	}
	// Seek into the middle.
	it2 := st.iterator([]byte("row00500"), nil)
	c, ok := it2.Next()
	if !ok || string(c.Row) != "row00500" {
		t.Errorf("seek = %v", c)
	}
	// Seek past the end.
	it3 := st.iterator([]byte("zzz"), nil)
	if _, ok := it3.Next(); ok {
		t.Error("seek past end should be empty")
	}
	// Bloom filter works.
	if !st.bloom.MayContain([]byte("row00001")) {
		t.Error("bloom false negative")
	}
}

func TestOpenSSTableRejectsGarbage(t *testing.T) {
	fs := dfs.New(dfs.Config{BlockSize: 1024, Replication: 1, DataNodes: 1})
	fs.WriteFile("/junk", bytes.Repeat([]byte("a"), 100))
	if _, err := openSSTable(fs, "/junk", nil); err == nil {
		t.Error("garbage file should not open")
	}
	fs.WriteFile("/small", []byte("x"))
	if _, err := openSSTable(fs, "/small", nil); err == nil {
		t.Error("tiny file should not open")
	}
}

func TestWALReplay(t *testing.T) {
	fs := dfs.New(dfs.Config{BlockSize: 4096, Replication: 1, DataNodes: 1})
	fs.MkdirAll("/r")
	w, rec, err := openWAL(fs, "/r/wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != 0 {
		t.Errorf("fresh WAL recovered %d cells", len(rec))
	}
	cells := []*Cell{
		{Row: []byte("a"), Family: "d", Qualifier: []byte("q"), Ts: 1, Type: TypePut, Value: []byte("v1")},
		{Row: []byte("b"), Family: "d", Qualifier: []byte("q"), Ts: 2, Type: TypeDeleteRow},
	}
	if err := w.Append(cells); err != nil {
		t.Fatal(err)
	}
	w.Close()
	_, rec2, err := openWAL(fs, "/r/wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2) != 2 || string(rec2[0].Row) != "a" || rec2[1].Type != TypeDeleteRow {
		t.Errorf("replay = %v", rec2)
	}
}

func TestWALTruncatedTailTolerated(t *testing.T) {
	fs := dfs.New(dfs.Config{BlockSize: 4096, Replication: 1, DataNodes: 1})
	fs.MkdirAll("/r")
	w, _, err := openWAL(fs, "/r/wal")
	if err != nil {
		t.Fatal(err)
	}
	c := Cell{Row: []byte("a"), Family: "d", Qualifier: []byte("q"), Ts: 1, Type: TypePut, Value: []byte("v")}
	w.Append([]*Cell{&c})
	w.Close()
	data, _ := fs.ReadFile("/r/wal")
	// Append garbage simulating a torn write.
	aw, _ := fs.Append("/r/wal")
	aw.Write([]byte{0x55, 0x01, 0x02})
	aw.Close()
	_, rec, err := openWAL(fs, "/r/wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != 1 {
		t.Errorf("recovered %d cells, want 1 (good prefix of %d bytes)", len(rec), len(data))
	}
}

func TestStorePutGetBasic(t *testing.T) {
	c := testCluster(t, DefaultStoreConfig())
	tbl, err := c.CreateTable("t")
	if err != nil {
		t.Fatal(err)
	}
	put(t, tbl, "row1", "col1", "v1")
	put(t, tbl, "row1", "col2", "v2")
	put(t, tbl, "row2", "col1", "v3")
	if v, ok := getVal(t, tbl, "row1", "col1"); !ok || v != "v1" {
		t.Errorf("get row1:col1 = %q,%v", v, ok)
	}
	if v, ok := getVal(t, tbl, "row1", "col2"); !ok || v != "v2" {
		t.Errorf("get row1:col2 = %q,%v", v, ok)
	}
	if _, ok := getVal(t, tbl, "row3", "col1"); ok {
		t.Error("absent row should miss")
	}
}

func TestOverwriteReturnsLatest(t *testing.T) {
	c := testCluster(t, DefaultStoreConfig())
	tbl, _ := c.CreateTable("t")
	put(t, tbl, "r", "q", "old")
	put(t, tbl, "r", "q", "new")
	if v, _ := getVal(t, tbl, "r", "q"); v != "new" {
		t.Errorf("latest = %q", v)
	}
}

func TestDeleteRowHidesAll(t *testing.T) {
	c := testCluster(t, DefaultStoreConfig())
	tbl, _ := c.CreateTable("t")
	put(t, tbl, "r", "q1", "v1")
	put(t, tbl, "r", "q2", "v2")
	if err := tbl.DeleteRow([]byte("r"), nil); err != nil {
		t.Fatal(err)
	}
	cells, err := tbl.Get([]byte("r"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 0 {
		t.Errorf("deleted row still visible: %v", cells)
	}
	// Writing after the delete resurrects the row (newer ts).
	put(t, tbl, "r", "q1", "v3")
	if v, ok := getVal(t, tbl, "r", "q1"); !ok || v != "v3" {
		t.Errorf("post-delete write = %q,%v", v, ok)
	}
	if _, ok := getVal(t, tbl, "r", "q2"); ok {
		t.Error("q2 should stay deleted")
	}
}

func TestDeleteColumnHidesOnlyColumn(t *testing.T) {
	c := testCluster(t, DefaultStoreConfig())
	tbl, _ := c.CreateTable("t")
	put(t, tbl, "r", "q1", "v1")
	put(t, tbl, "r", "q2", "v2")
	tbl.DeleteColumn([]byte("r"), "d", []byte("q1"), nil)
	if _, ok := getVal(t, tbl, "r", "q1"); ok {
		t.Error("q1 should be deleted")
	}
	if v, ok := getVal(t, tbl, "r", "q2"); !ok || v != "v2" {
		t.Errorf("q2 = %q,%v", v, ok)
	}
}

func TestFlushAndReadFromStoreFile(t *testing.T) {
	c := testCluster(t, DefaultStoreConfig())
	tbl, _ := c.CreateTable("t")
	for i := 0; i < 100; i++ {
		put(t, tbl, fmt.Sprintf("row%03d", i), "q", fmt.Sprintf("v%d", i))
	}
	if err := tbl.Flush(nil); err != nil {
		t.Fatal(err)
	}
	reg := tbl.Regions()[0]
	if reg.store.fileCount() != 1 {
		t.Errorf("fileCount = %d", reg.store.fileCount())
	}
	if v, ok := getVal(t, tbl, "row042", "q"); !ok || v != "v42" {
		t.Errorf("after flush = %q,%v", v, ok)
	}
	// Overwrite after flush: memtable must shadow the file.
	put(t, tbl, "row042", "q", "fresh")
	if v, _ := getVal(t, tbl, "row042", "q"); v != "fresh" {
		t.Errorf("memtable should shadow file: %q", v)
	}
}

func TestAutoFlushOnThreshold(t *testing.T) {
	cfg := DefaultStoreConfig()
	cfg.FlushThresholdBytes = 512
	c := testCluster(t, cfg)
	tbl, _ := c.CreateTable("t")
	for i := 0; i < 100; i++ {
		put(t, tbl, fmt.Sprintf("row%03d", i), "q", "some value content")
	}
	if tbl.Regions()[0].store.fileCount() == 0 {
		t.Error("expected automatic flushes")
	}
	for i := 0; i < 100; i++ {
		if v, ok := getVal(t, tbl, fmt.Sprintf("row%03d", i), "q"); !ok || v != "some value content" {
			t.Fatalf("row%03d lost after auto flush: %q %v", i, v, ok)
		}
	}
}

func TestScanRangeAcrossMemAndFiles(t *testing.T) {
	c := testCluster(t, DefaultStoreConfig())
	tbl, _ := c.CreateTable("t")
	for i := 0; i < 50; i++ {
		put(t, tbl, fmt.Sprintf("row%03d", i), "q", "file")
	}
	tbl.Flush(nil)
	for i := 50; i < 100; i++ {
		put(t, tbl, fmt.Sprintf("row%03d", i), "q", "mem")
	}
	sc := tbl.NewScanner(Scan{Start: []byte("row020"), End: []byte("row080")})
	defer sc.Close()
	var rows []string
	for {
		cell, ok := sc.Next()
		if !ok {
			break
		}
		rows = append(rows, string(cell.Row))
	}
	if len(rows) != 60 {
		t.Fatalf("scan returned %d rows, want 60", len(rows))
	}
	if rows[0] != "row020" || rows[59] != "row079" {
		t.Errorf("range bounds wrong: %s..%s", rows[0], rows[59])
	}
	if !sort.StringsAreSorted(rows) {
		t.Error("scan out of order")
	}
}

func TestScanMaxVersions(t *testing.T) {
	c := testCluster(t, DefaultStoreConfig())
	tbl, _ := c.CreateTable("t")
	put(t, tbl, "r", "q", "v1")
	put(t, tbl, "r", "q", "v2")
	put(t, tbl, "r", "q", "v3")
	sc := tbl.NewScanner(Scan{MaxVersions: 2})
	defer sc.Close()
	var vals []string
	for {
		cell, ok := sc.Next()
		if !ok {
			break
		}
		vals = append(vals, string(cell.Value))
	}
	if len(vals) != 2 || vals[0] != "v3" || vals[1] != "v2" {
		t.Errorf("versions = %v", vals)
	}
}

func TestMinorCompactionPreservesView(t *testing.T) {
	cfg := DefaultStoreConfig()
	cfg.CompactionThreshold = 100 // manual only
	c := testCluster(t, cfg)
	tbl, _ := c.CreateTable("t")
	put(t, tbl, "a", "q", "v1")
	tbl.Flush(nil)
	put(t, tbl, "a", "q", "v2")
	put(t, tbl, "b", "q", "x")
	tbl.Flush(nil)
	tbl.DeleteRow([]byte("b"), nil)
	tbl.Flush(nil)
	if got := tbl.Regions()[0].store.fileCount(); got != 3 {
		t.Fatalf("fileCount = %d", got)
	}
	if err := tbl.Compact(false, nil); err != nil {
		t.Fatal(err)
	}
	if got := tbl.Regions()[0].store.fileCount(); got != 1 {
		t.Errorf("after minor compact fileCount = %d", got)
	}
	if v, _ := getVal(t, tbl, "a", "q"); v != "v2" {
		t.Errorf("a = %q", v)
	}
	if _, ok := getVal(t, tbl, "b", "q"); ok {
		t.Error("b should stay deleted after minor compaction (tombstone kept)")
	}
}

func TestMajorCompactionDropsTombstones(t *testing.T) {
	c := testCluster(t, DefaultStoreConfig())
	tbl, _ := c.CreateTable("t")
	put(t, tbl, "a", "q", "keep")
	put(t, tbl, "b", "q", "dead")
	tbl.DeleteRow([]byte("b"), nil)
	if err := tbl.Compact(true, nil); err != nil {
		t.Fatal(err)
	}
	st := tbl.Regions()[0].store
	if st.fileCount() != 1 {
		t.Fatalf("fileCount = %d", st.fileCount())
	}
	// Raw scan should contain only the surviving put.
	raw := st.scanRaw(nil, nil, nil)
	defer raw.Close()
	var n int
	for {
		cell, ok := raw.Next()
		if !ok {
			break
		}
		if cell.Type != TypePut {
			t.Errorf("tombstone survived major compaction: %v", cell)
		}
		n++
	}
	if n != 1 {
		t.Errorf("raw cells after major compact = %d, want 1", n)
	}
	if v, _ := getVal(t, tbl, "a", "q"); v != "keep" {
		t.Errorf("a = %q", v)
	}
}

func TestWALRecoveryAfterReopen(t *testing.T) {
	fs := dfs.New(dfs.Config{BlockSize: 4096, Replication: 1, DataNodes: 1})
	st, err := openStore(fs, "/r", DefaultStoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	cells := []*Cell{{Row: []byte("k"), Family: "d", Qualifier: []byte("q"), Ts: 9, Type: TypePut, Value: []byte("durable")}}
	if err := st.put(cells, nil); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash: no flush, no close; reopen from the same dir.
	st2, err := openStore(fs, "/r", DefaultStoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	got, err := st2.get([]byte("k"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || string(got[0].Value) != "durable" {
		t.Errorf("post-crash get = %v", got)
	}
}

func TestRegionSplitAndRouting(t *testing.T) {
	c := testCluster(t, DefaultStoreConfig())
	tbl, _ := c.CreateTable("t")
	for i := 0; i < 200; i++ {
		put(t, tbl, fmt.Sprintf("row%04d", i), "q", fmt.Sprintf("v%d", i))
	}
	reg := tbl.Regions()[0]
	if err := tbl.SplitRegion(reg, nil); err != nil {
		t.Fatal(err)
	}
	if tbl.RegionCount() != 2 {
		t.Fatalf("RegionCount = %d", tbl.RegionCount())
	}
	regs := tbl.Regions()
	if regs[0].Start() != nil || regs[1].End() != nil {
		t.Error("outer bounds should stay unbounded")
	}
	if !bytes.Equal(regs[0].End(), regs[1].Start()) {
		t.Error("regions not contiguous")
	}
	// All rows still readable and writes still routed.
	for i := 0; i < 200; i++ {
		if v, ok := getVal(t, tbl, fmt.Sprintf("row%04d", i), "q"); !ok || v != fmt.Sprintf("v%d", i) {
			t.Fatalf("row%04d after split = %q,%v", i, v, ok)
		}
	}
	put(t, tbl, "row0000", "q", "updated")
	put(t, tbl, "row0199", "q", "updated")
	if v, _ := getVal(t, tbl, "row0000", "q"); v != "updated" {
		t.Error("write to left region lost")
	}
	if v, _ := getVal(t, tbl, "row0199", "q"); v != "updated" {
		t.Error("write to right region lost")
	}
	// Full scan still ordered and complete.
	sc := tbl.NewScanner(Scan{})
	defer sc.Close()
	count := 0
	var prev []byte
	for {
		cell, ok := sc.Next()
		if !ok {
			break
		}
		if prev != nil && bytes.Compare(prev, cell.Row) > 0 {
			t.Fatal("cross-region scan out of order")
		}
		prev = append(prev[:0], cell.Row...)
		count++
	}
	if count != 200 {
		t.Errorf("scan after split = %d rows", count)
	}
}

func TestAutoSplit(t *testing.T) {
	c := testCluster(t, DefaultStoreConfig())
	tbl, _ := c.CreateTable("t")
	tbl.SetSplitThreshold(20 << 10)
	val := bytes.Repeat([]byte("x"), 256)
	for i := 0; i < 400; i++ {
		err := tbl.Put([]*Cell{{Row: []byte(fmt.Sprintf("row%05d", i)), Family: "d", Qualifier: []byte("q"), Type: TypePut, Value: val}}, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	if tbl.RegionCount() < 2 {
		t.Errorf("expected auto split, RegionCount = %d", tbl.RegionCount())
	}
}

func TestClusterTableLifecycle(t *testing.T) {
	c := testCluster(t, DefaultStoreConfig())
	if _, err := c.CreateTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.CreateTable("t"); !errors.Is(err, ErrTableExists) {
		t.Errorf("duplicate create = %v", err)
	}
	if !c.HasTable("t") {
		t.Error("HasTable false")
	}
	names := c.TableNames()
	if len(names) != 1 || names[0] != "t" {
		t.Errorf("TableNames = %v", names)
	}
	tbl, _ := c.Table("t")
	put(t, tbl, "r", "q", "v")
	if err := c.TruncateTable("t"); err != nil {
		t.Fatal(err)
	}
	tbl, _ = c.Table("t")
	if n := tbl.EntryCount(); n != 0 {
		t.Errorf("entries after truncate = %d", n)
	}
	if err := c.DropTable("t"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Table("t"); !errors.Is(err, ErrTableNotFound) {
		t.Errorf("dropped table lookup = %v", err)
	}
	if err := c.DropTable("t"); !errors.Is(err, ErrTableNotFound) {
		t.Errorf("double drop = %v", err)
	}
}

func TestRowScannerGroupsRows(t *testing.T) {
	c := testCluster(t, DefaultStoreConfig())
	tbl, _ := c.CreateTable("t")
	put(t, tbl, "r1", "a", "1")
	put(t, tbl, "r1", "b", "2")
	put(t, tbl, "r2", "a", "3")
	rs := tbl.NewRowScanner(Scan{})
	defer rs.Close()
	r1, ok := rs.Next()
	if !ok || string(r1.Row) != "r1" || len(r1.Cells) != 2 {
		t.Fatalf("r1 = %v %v", r1, ok)
	}
	if string(r1.Value("d", []byte("b"))) != "2" {
		t.Errorf("Value lookup = %q", r1.Value("d", []byte("b")))
	}
	if r1.Value("d", []byte("zz")) != nil {
		t.Error("missing qualifier should be nil")
	}
	r2, ok := rs.Next()
	if !ok || string(r2.Row) != "r2" || len(r2.Cells) != 1 {
		t.Fatalf("r2 = %v %v", r2, ok)
	}
	if _, ok := rs.Next(); ok {
		t.Error("scanner should be exhausted")
	}
}

func TestBloomDisabledStillCorrect(t *testing.T) {
	cfg := DefaultStoreConfig()
	cfg.BloomEnabled = false
	c := testCluster(t, cfg)
	tbl, _ := c.CreateTable("t")
	put(t, tbl, "r", "q", "v")
	tbl.Flush(nil)
	if v, ok := getVal(t, tbl, "r", "q"); !ok || v != "v" {
		t.Errorf("get without bloom = %q,%v", v, ok)
	}
}

func TestMeterChargedOnOps(t *testing.T) {
	p := sim.GridCluster()
	m := sim.NewMeter(&p)
	c := testCluster(t, DefaultStoreConfig())
	tbl, _ := c.CreateTable("t")
	err := tbl.Put([]*Cell{{Row: []byte("r"), Family: "d", Qualifier: []byte("q"), Type: TypePut, Value: []byte("v")}}, m)
	if err != nil {
		t.Fatal(err)
	}
	if m.Seconds() <= 0 {
		t.Error("put should charge the meter")
	}
	before := m.Seconds()
	if _, err := tbl.Get([]byte("r"), m); err != nil {
		t.Fatal(err)
	}
	if m.Seconds() <= before {
		t.Error("get should charge the meter")
	}
}

// referenceModel is a naive in-memory model of the visible view used
// for differential testing.
type referenceModel struct {
	data map[string]map[string]refVal // row -> qual -> latest
}

type refVal struct {
	ts  uint64
	val string
}

func newReferenceModel() *referenceModel {
	return &referenceModel{data: map[string]map[string]refVal{}}
}

func (r *referenceModel) put(row, qual, val string, ts uint64) {
	m, ok := r.data[row]
	if !ok {
		m = map[string]refVal{}
		r.data[row] = m
	}
	if cur, ok := m[qual]; !ok || ts >= cur.ts {
		m[qual] = refVal{ts: ts, val: val}
	}
}

func (r *referenceModel) deleteRow(row string, ts uint64) {
	m := r.data[row]
	for q, v := range m {
		if v.ts <= ts {
			delete(m, q)
		}
	}
}

func (r *referenceModel) visible() map[string]map[string]string {
	out := map[string]map[string]string{}
	for row, cols := range r.data {
		for q, v := range cols {
			if out[row] == nil {
				out[row] = map[string]string{}
			}
			out[row][q] = v.val
		}
	}
	return out
}

func TestPropertyDifferentialAgainstModel(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5}
	for _, seed := range seeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			cfg := DefaultStoreConfig()
			cfg.FlushThresholdBytes = 2 << 10 // force frequent flushes
			cfg.CompactionThreshold = 3
			c := testCluster(t, cfg)
			tbl, _ := c.CreateTable("t")
			model := newReferenceModel()
			for op := 0; op < 800; op++ {
				row := fmt.Sprintf("row%02d", rng.Intn(40))
				qual := fmt.Sprintf("q%d", rng.Intn(4))
				switch rng.Intn(10) {
				case 0: // delete row
					ts := c.NextTs()
					err := tbl.Put([]*Cell{{Row: []byte(row), Ts: ts, Type: TypeDeleteRow}}, nil)
					if err != nil {
						t.Fatal(err)
					}
					model.deleteRow(row, ts)
				case 1: // flush
					if err := tbl.Flush(nil); err != nil {
						t.Fatal(err)
					}
				case 2: // compact
					if err := tbl.Compact(rng.Intn(2) == 0, nil); err != nil {
						t.Fatal(err)
					}
				default: // put
					ts := c.NextTs()
					val := fmt.Sprintf("v%d", op)
					err := tbl.Put([]*Cell{{Row: []byte(row), Family: "d", Qualifier: []byte(qual), Ts: ts, Type: TypePut, Value: []byte(val)}}, nil)
					if err != nil {
						t.Fatal(err)
					}
					model.put(row, qual, val, ts)
				}
			}
			// Compare full visible views via scan.
			got := map[string]map[string]string{}
			rs := tbl.NewRowScanner(Scan{})
			defer rs.Close()
			for {
				r, ok := rs.Next()
				if !ok {
					break
				}
				row := string(r.Row)
				got[row] = map[string]string{}
				for _, cell := range r.Cells {
					got[row][string(cell.Qualifier)] = string(cell.Value)
				}
			}
			want := model.visible()
			for row, cols := range want {
				for q, v := range cols {
					if got[row][q] != v {
						t.Fatalf("seed %d: row %s q %s: got %q want %q", seed, row, q, got[row][q], v)
					}
				}
			}
			for row, cols := range got {
				for q := range cols {
					if _, ok := want[row][q]; !ok {
						t.Fatalf("seed %d: phantom cell %s:%s", seed, row, q)
					}
				}
			}
		})
	}
}
