// Package kvstore implements an HBase-like, log-structured key-value
// store: a write-ahead log on the distributed file system, an
// in-memory memtable (skiplist), immutable sorted store files with
// block indexes and bloom filters, multi-version cells with
// timestamps, delete tombstones, minor/major compaction, and
// range-partitioned regions.
//
// It is the substrate for DualTable's Attached Tables (paper §III-B):
// record-level consistency, efficient random writes and reads, sorted
// row keys (so UNION READ can merge-join against the master table),
// and HBase's multi-version semantics that the paper notes can track
// data change history.
package kvstore

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// CellType distinguishes puts from tombstones. The order of the
// constants is the sort order within one (row, column, timestamp)
// slot: tombstones sort before puts so readers see them first.
type CellType uint8

const (
	// TypeDeleteRow marks every column of the row deleted at and
	// before the cell timestamp.
	TypeDeleteRow CellType = iota
	// TypeDeleteColumn marks all versions of one column deleted at and
	// before the cell timestamp.
	TypeDeleteColumn
	// TypePut is a regular value write.
	TypePut
)

// String names the cell type.
func (t CellType) String() string {
	switch t {
	case TypePut:
		return "Put"
	case TypeDeleteColumn:
		return "DeleteColumn"
	case TypeDeleteRow:
		return "DeleteRow"
	default:
		return fmt.Sprintf("CellType(%d)", uint8(t))
	}
}

// Cell is one versioned key-value entry, the unit of storage —
// equivalent to an HBase KeyValue.
type Cell struct {
	Row       []byte
	Family    string
	Qualifier []byte
	Ts        uint64
	Type      CellType
	Value     []byte
}

// CompareCells orders cells the way HBase does: by row ascending,
// family, qualifier, timestamp *descending* (newest first), then type
// (tombstones before puts).
func CompareCells(a, b *Cell) int {
	if c := bytes.Compare(a.Row, b.Row); c != 0 {
		return c
	}
	// Row tombstones sort before any column of the row (they have no
	// family/qualifier and must be seen first).
	at, bt := a.Type == TypeDeleteRow, b.Type == TypeDeleteRow
	if at != bt {
		if at {
			return -1
		}
		return 1
	}
	if at && bt {
		// Two row tombstones: newest first.
		return compareTsType(a, b)
	}
	if c := compareStrings(a.Family, b.Family); c != 0 {
		return c
	}
	if c := bytes.Compare(a.Qualifier, b.Qualifier); c != 0 {
		return c
	}
	return compareTsType(a, b)
}

func compareTsType(a, b *Cell) int {
	switch {
	case a.Ts > b.Ts:
		return -1
	case a.Ts < b.Ts:
		return 1
	}
	switch {
	case a.Type < b.Type:
		return -1
	case a.Type > b.Type:
		return 1
	default:
		return 0
	}
}

func compareStrings(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Size returns the approximate heap size of the cell, used for
// memtable flush accounting.
func (c *Cell) Size() int {
	return len(c.Row) + len(c.Family) + len(c.Qualifier) + len(c.Value) + 16
}

// Clone deep-copies the cell so callers may reuse their buffers.
func (c *Cell) Clone() Cell {
	return Cell{
		Row:       append([]byte(nil), c.Row...),
		Family:    c.Family,
		Qualifier: append([]byte(nil), c.Qualifier...),
		Ts:        c.Ts,
		Type:      c.Type,
		Value:     append([]byte(nil), c.Value...),
	}
}

// String renders the cell for debugging.
func (c *Cell) String() string {
	return fmt.Sprintf("%q/%s:%q/%d/%s=%q", c.Row, c.Family, c.Qualifier, c.Ts, c.Type, c.Value)
}

// appendCell serializes a cell:
//
//	uvarint(rowLen) row uvarint(famLen) fam uvarint(qualLen) qual
//	uvarint(ts) type uvarint(valLen) val
func appendCell(dst []byte, c *Cell) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(c.Row)))
	dst = append(dst, c.Row...)
	dst = binary.AppendUvarint(dst, uint64(len(c.Family)))
	dst = append(dst, c.Family...)
	dst = binary.AppendUvarint(dst, uint64(len(c.Qualifier)))
	dst = append(dst, c.Qualifier...)
	dst = binary.AppendUvarint(dst, c.Ts)
	dst = append(dst, byte(c.Type))
	dst = binary.AppendUvarint(dst, uint64(len(c.Value)))
	dst = append(dst, c.Value...)
	return dst
}

// decodeCell parses one cell from b, returning bytes consumed.
func decodeCell(b []byte) (Cell, int, error) {
	var c Cell
	off := 0
	readBytes := func() ([]byte, error) {
		l, n := binary.Uvarint(b[off:])
		if n <= 0 {
			return nil, fmt.Errorf("kvstore: bad length varint at %d", off)
		}
		off += n
		end := off + int(l)
		if end > len(b) || end < off {
			return nil, fmt.Errorf("kvstore: truncated field (want %d bytes at %d)", l, off)
		}
		out := b[off:end]
		off = end
		return out, nil
	}
	row, err := readBytes()
	if err != nil {
		return c, 0, err
	}
	fam, err := readBytes()
	if err != nil {
		return c, 0, err
	}
	qual, err := readBytes()
	if err != nil {
		return c, 0, err
	}
	ts, n := binary.Uvarint(b[off:])
	if n <= 0 {
		return c, 0, fmt.Errorf("kvstore: bad timestamp")
	}
	off += n
	if off >= len(b) {
		return c, 0, fmt.Errorf("kvstore: truncated type byte")
	}
	typ := CellType(b[off])
	off++
	val, err := readBytes()
	if err != nil {
		return c, 0, err
	}
	c = Cell{Row: row, Family: string(fam), Qualifier: qual, Ts: ts, Type: typ, Value: val}
	return c, off, nil
}

// seekProbe returns a synthetic cell that sorts before every real
// cell of the given row (max timestamp, row-tombstone type), for
// iterator seeks.
func seekProbe(row []byte) *Cell {
	return &Cell{Row: row, Ts: ^uint64(0), Type: TypeDeleteRow}
}

// CellIterator yields cells in CompareCells order.
type CellIterator interface {
	// Next advances and returns the next cell, or false at the end.
	Next() (*Cell, bool)
	// Close releases resources.
	Close() error
}

// sliceIterator iterates a pre-sorted slice of cells.
type sliceIterator struct {
	cells []Cell
	idx   int
}

func (it *sliceIterator) Next() (*Cell, bool) {
	if it.idx >= len(it.cells) {
		return nil, false
	}
	c := &it.cells[it.idx]
	it.idx++
	return c, true
}

func (it *sliceIterator) Close() error { return nil }
