// Package acid implements a Hive-ACID-style storage handler (the
// HIVE-5317 design the paper compares against conceptually in §V-C):
// base ORC files plus one delta file per transaction, all on the
// distributed file system. The differences from DualTable that the
// paper calls out are faithfully reproduced:
//
//   - the whole updated record goes into the delta, "even if only one
//     cell is changed";
//   - each transaction creates a new delta, so readers merge-sort the
//     base with a growing pile of deltas — sequential scans, no random
//     access;
//   - there is no run-time plan selection: DML always writes deltas.
//
// Minor compaction merges all deltas into one; major compaction folds
// them into a new base. Registered as STORED AS ACID so the ablation
// benchmarks can compare it with DualTable on the same workloads.
package acid

import (
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"

	"dualtable/internal/datum"
	"dualtable/internal/dfs"
	"dualtable/internal/hive"
	"dualtable/internal/mapred"
	"dualtable/internal/metastore"
	"dualtable/internal/orcfile"
	"dualtable/internal/sim"
	"dualtable/internal/sqlparser"
)

const (
	fileIDMetaKey = "acid.fileid"
	opUpsert      = int64(0)
	opDelete      = int64(1)
)

// Handler implements hive.StorageHandler + DMLHandler + Compactor.
type Handler struct {
	e *hive.Engine

	mu      sync.Mutex
	nextTxn map[string]int // per-table transaction counter
	nextFid map[string]uint32
}

// Register installs the handler for metastore.StorageAcid.
func Register(e *hive.Engine) (*Handler, error) {
	h := &Handler{e: e, nextTxn: map[string]int{}, nextFid: map[string]uint32{}}
	e.RegisterHandler(metastore.StorageAcid, h)
	return h, nil
}

func baseDir(desc *metastore.TableDesc) string  { return path.Join(desc.Location, "base") }
func deltaDir(desc *metastore.TableDesc) string { return path.Join(desc.Location, "deltas") }

// deltaSchema prefixes the table schema with (rid, op).
func deltaSchema(desc *metastore.TableDesc) datum.Schema {
	s := datum.Schema{{Name: "__rid", Kind: datum.KindInt}, {Name: "__op", Kind: datum.KindInt}}
	return append(s, desc.Schema...)
}

// Create provisions base and delta directories.
func (h *Handler) Create(desc *metastore.TableDesc) error {
	if err := h.e.FS.MkdirAll(baseDir(desc)); err != nil {
		return err
	}
	return h.e.FS.MkdirAll(deltaDir(desc))
}

// Drop removes everything.
func (h *Handler) Drop(desc *metastore.TableDesc) error {
	if h.e.FS.Exists(desc.Location) {
		return h.e.FS.Delete(desc.Location, true)
	}
	return nil
}

func (h *Handler) allocFid(desc *metastore.TableDesc) uint32 {
	h.mu.Lock()
	defer h.mu.Unlock()
	key := strings.ToLower(desc.Name)
	h.nextFid[key]++
	return h.nextFid[key]
}

func (h *Handler) allocTxn(desc *metastore.TableDesc) int {
	h.mu.Lock()
	defer h.mu.Unlock()
	key := strings.ToLower(desc.Name)
	h.nextTxn[key]++
	return h.nextTxn[key]
}

// baseFiles opens the base file footers.
type baseFile struct {
	path   string
	size   int64
	fileID uint32
	rows   int64
}

func (h *Handler) baseFiles(desc *metastore.TableDesc) ([]baseFile, error) {
	infos, err := h.e.FS.ListFiles(baseDir(desc))
	if err != nil {
		return nil, err
	}
	var out []baseFile
	for _, fi := range infos {
		if strings.HasPrefix(fi.Name, ".") {
			continue
		}
		fr, err := h.e.FS.Open(fi.Path)
		if err != nil {
			return nil, err
		}
		rd, err := orcfile.Open(fr, fr.Size())
		if err != nil {
			fr.Close()
			return nil, err
		}
		var fid uint64
		fmt.Sscanf(rd.UserMeta()[fileIDMetaKey], "%d", &fid)
		fr.Close()
		out = append(out, baseFile{path: fi.Path, size: fi.Size, fileID: uint32(fid), rows: rd.NumRows()})
	}
	return out, nil
}

// deltaEntry is one modification record in memory.
type deltaEntry struct {
	rid uint64
	op  int64
	row datum.Row
	seq int // delta ordinal: later transactions win
}

// loadDeltas reads every delta file (the merge-on-read cost Hive ACID
// pays), charging the meter.
func (h *Handler) loadDeltas(desc *metastore.TableDesc, m *sim.Meter) ([]deltaEntry, error) {
	infos, err := h.e.FS.ListFiles(deltaDir(desc))
	if err != nil {
		return nil, err
	}
	sort.Slice(infos, func(i, j int) bool { return infos[i].Name < infos[j].Name })
	var out []deltaEntry
	for seq, fi := range infos {
		fr, err := h.e.FS.OpenMeter(fi.Path, m)
		if err != nil {
			return nil, err
		}
		rd, err := orcfile.Open(fr, fr.Size())
		if err != nil {
			fr.Close()
			return nil, err
		}
		rr := rd.NewRowReader(orcfile.RowReaderOptions{})
		for {
			row, _, err := rr.Next()
			if err != nil {
				break
			}
			entry := deltaEntry{
				rid: uint64(row[0].I),
				op:  row[1].I,
				row: row[2:].Clone(),
				seq: seq,
			}
			out = append(out, entry)
		}
		fr.Close()
	}
	// Sort by rid; later transactions after earlier ones.
	sort.Slice(out, func(i, j int) bool {
		if out[i].rid != out[j].rid {
			return out[i].rid < out[j].rid
		}
		return out[i].seq < out[j].seq
	})
	return out, nil
}

// DeltaFileCount reports the number of delta files (observability).
func (h *Handler) DeltaFileCount(desc *metastore.TableDesc) (int, error) {
	infos, err := h.e.FS.ListFiles(deltaDir(desc))
	if err != nil {
		return 0, err
	}
	return len(infos), nil
}

// Splits returns one merge-on-read split per base file. Every split
// re-reads all deltas — exactly the amplification §V-C describes.
func (h *Handler) Splits(desc *metastore.TableDesc, opts hive.ScanOptions) ([]mapred.InputSplit, error) {
	files, err := h.baseFiles(desc)
	if err != nil {
		return nil, err
	}
	var splits []mapred.InputSplit
	for _, f := range files {
		splits = append(splits, &acidSplit{h: h, desc: desc, file: f, opts: opts})
	}
	return splits, nil
}

// RowCount sums base-file rows.
func (h *Handler) RowCount(desc *metastore.TableDesc) (int64, error) {
	files, err := h.baseFiles(desc)
	if err != nil {
		return 0, err
	}
	var n int64
	for _, f := range files {
		n += f.rows
	}
	return n, nil
}

// DataSize reports the base + delta byte size.
func (h *Handler) DataSize(desc *metastore.TableDesc) (int64, error) {
	return h.e.FS.Du(desc.Location)
}

// Append writes new base files.
func (h *Handler) Append(desc *metastore.TableDesc) (mapred.OutputFactory, hive.Committer, error) {
	return &baseOutputFactory{h: h, desc: desc, dir: baseDir(desc)}, nopCommitter{}, nil
}

// Overwrite replaces base and clears deltas on commit.
func (h *Handler) Overwrite(desc *metastore.TableDesc) (mapred.OutputFactory, hive.Committer, error) {
	staging := path.Join(desc.Location, ".staging")
	if h.e.FS.Exists(staging) {
		if err := h.e.FS.Delete(staging, true); err != nil {
			return nil, nil, err
		}
	}
	if err := h.e.FS.MkdirAll(staging); err != nil {
		return nil, nil, err
	}
	return &baseOutputFactory{h: h, desc: desc, dir: staging},
		&overwriteCommitter{h: h, desc: desc, staging: staging}, nil
}

type nopCommitter struct{}

func (nopCommitter) Commit() error { return nil }
func (nopCommitter) Abort() error  { return nil }

type overwriteCommitter struct {
	h       *Handler
	desc    *metastore.TableDesc
	staging string
}

func (c *overwriteCommitter) Commit() error {
	fs := c.h.e.FS
	dir := baseDir(c.desc)
	infos, err := fs.ListFiles(dir)
	if err != nil {
		return err
	}
	for _, fi := range infos {
		if err := fs.Delete(fi.Path, false); err != nil {
			return err
		}
	}
	staged, err := fs.ListFiles(c.staging)
	if err != nil {
		return err
	}
	for _, fi := range staged {
		if err := fs.Rename(fi.Path, path.Join(dir, fi.Name)); err != nil {
			return err
		}
	}
	if err := fs.Delete(c.staging, true); err != nil {
		return err
	}
	if err := fs.Delete(deltaDir(c.desc), true); err != nil {
		return err
	}
	return fs.MkdirAll(deltaDir(c.desc))
}

func (c *overwriteCommitter) Abort() error {
	if c.h.e.FS.Exists(c.staging) {
		return c.h.e.FS.Delete(c.staging, true)
	}
	return nil
}

// baseOutputFactory writes ORC base files with file IDs.
type baseOutputFactory struct {
	h    *Handler
	desc *metastore.TableDesc
	dir  string
}

func (f *baseOutputFactory) NewCollector(taskID int, m *sim.Meter) (mapred.Collector, error) {
	return &baseCollector{f: f, meter: m}, nil
}

type baseCollector struct {
	f     *baseOutputFactory
	meter *sim.Meter
	fw    *dfs.FileWriter
	w     *orcfile.Writer
}

func (c *baseCollector) Collect(row datum.Row) error {
	if c.w == nil {
		fid := c.f.h.allocFid(c.f.desc)
		fw, err := c.f.h.e.FS.CreateMeter(path.Join(c.f.dir, fmt.Sprintf("base-%08d.orc", fid)), c.meter)
		if err != nil {
			return err
		}
		w, err := orcfile.NewWriter(fw, c.f.desc.Schema, orcfile.WriterOptions{
			Compression: true,
			UserMeta:    map[string]string{fileIDMetaKey: fmt.Sprintf("%d", fid)},
		})
		if err != nil {
			return err
		}
		c.fw, c.w = fw, w
	}
	return c.w.WriteRow(row)
}

func (c *baseCollector) Close() error {
	if c.w == nil {
		return nil
	}
	if err := c.w.Close(); err != nil {
		return err
	}
	return c.fw.Close()
}

// acidSplit merges one base file with all delta entries in its rid
// range.
type acidSplit struct {
	h    *Handler
	desc *metastore.TableDesc
	file baseFile
	opts hive.ScanOptions
}

func (s *acidSplit) Length() int64 { return s.file.size }

func (s *acidSplit) Open(m *sim.Meter) (mapred.RecordReader, error) {
	fr, err := s.h.e.FS.OpenMeter(s.file.path, m)
	if err != nil {
		return nil, err
	}
	rd, err := orcfile.Open(fr, fr.Size())
	if err != nil {
		fr.Close()
		return nil, err
	}
	// Merge-on-read: every split scans every delta file (no random
	// access, no bloom filters — the §V-C contrast with DualTable).
	deltas, err := s.h.loadDeltas(s.desc, m)
	if err != nil {
		fr.Close()
		return nil, err
	}
	lo := uint64(s.file.fileID) << 32
	hi := (uint64(s.file.fileID) + 1) << 32
	start := sort.Search(len(deltas), func(i int) bool { return deltas[i].rid >= lo })
	end := sort.Search(len(deltas), func(i int) bool { return deltas[i].rid >= hi })
	return &acidReader{
		fr:     fr,
		rows:   rd.NewRowReader(orcfile.RowReaderOptions{Columns: s.opts.Projection}),
		deltas: deltas[start:end],
		fileID: s.file.fileID,
	}, nil
}

type acidReader struct {
	fr     *dfs.FileReader
	rows   *orcfile.RowReader
	deltas []deltaEntry
	fileID uint32
	di     int
}

func (r *acidReader) Next() (datum.Row, mapred.RecordMeta, error) {
	for {
		row, ord, err := r.rows.Next()
		if err != nil {
			return nil, mapred.RecordMeta{}, mapred.EOF
		}
		rid := uint64(r.fileID)<<32 | uint64(ord)
		for r.di < len(r.deltas) && r.deltas[r.di].rid < rid {
			r.di++
		}
		// Apply every matching delta in transaction order; the last
		// one wins.
		var final datum.Row = row
		deleted := false
		applied := false
		for r.di < len(r.deltas) && r.deltas[r.di].rid == rid {
			d := r.deltas[r.di]
			if d.op == opDelete {
				deleted = true
			} else {
				deleted = false
				final = d.row
				applied = true
			}
			r.di++
		}
		meta := mapred.RecordMeta{RecordID: rid}
		if deleted {
			continue
		}
		if applied {
			return final, meta, nil
		}
		return row, meta, nil
	}
}

func (r *acidReader) Close() error { return r.fr.Close() }

// ---- DML: always delta (no cost model — §V-C: "Hive always updates
// the delta tables. It could not make better decisions at runtime.")

// ExecUpdate writes full updated records into a fresh delta.
func (h *Handler) ExecUpdate(ec *hive.ExecContext, e *hive.Engine, desc *metastore.TableDesc, stmt *sqlparser.UpdateStmt, m *sim.Meter) (int64, string, error) {
	alias := stmt.Alias
	if alias == "" {
		alias = stmt.Table
	}
	var whereFn func(datum.Row) (datum.Datum, error)
	var err error
	if stmt.Where != nil {
		whereFn, err = e.CompileRowExpr(ec, stmt.Where, stmt.Table, alias, desc.Schema)
		if err != nil {
			return 0, "", err
		}
	}
	type setCol struct {
		idx int
		fn  func(datum.Row) (datum.Datum, error)
	}
	var sets []setCol
	for _, s := range stmt.Sets {
		idx := desc.Schema.ColumnIndex(s.Column)
		fn, err := e.CompileRowExpr(ec, s.Value, stmt.Table, alias, desc.Schema)
		if err != nil {
			return 0, "", err
		}
		sets = append(sets, setCol{idx: idx, fn: fn})
	}
	n, err := h.runDeltaJob(ec, e, desc, m, func(tm *sim.Meter, row datum.Row, rid uint64, emitDelta func(deltaEntry) error) (bool, error) {
		if whereFn != nil {
			ok, err := whereFn(row)
			if err != nil {
				return false, err
			}
			if !ok.Truthy() {
				return false, nil
			}
		}
		// The whole record goes into the delta, even for a one-cell
		// change.
		updated := row.Clone()
		for _, s := range sets {
			nv, err := s.fn(row)
			if err != nil {
				return false, err
			}
			nv, err = datum.Coerce(nv, desc.Schema[s.idx].Kind)
			if err != nil {
				return false, err
			}
			updated[s.idx] = nv
		}
		return true, emitDelta(deltaEntry{rid: rid, op: opUpsert, row: updated})
	})
	return n, "DELTA", err
}

// ExecDelete writes delete records into a fresh delta.
func (h *Handler) ExecDelete(ec *hive.ExecContext, e *hive.Engine, desc *metastore.TableDesc, stmt *sqlparser.DeleteStmt, m *sim.Meter) (int64, string, error) {
	alias := stmt.Alias
	if alias == "" {
		alias = stmt.Table
	}
	var whereFn func(datum.Row) (datum.Datum, error)
	var err error
	if stmt.Where != nil {
		whereFn, err = e.CompileRowExpr(ec, stmt.Where, stmt.Table, alias, desc.Schema)
		if err != nil {
			return 0, "", err
		}
	}
	blank := make(datum.Row, len(desc.Schema))
	for i := range blank {
		blank[i] = datum.Null
	}
	n, err := h.runDeltaJob(ec, e, desc, m, func(tm *sim.Meter, row datum.Row, rid uint64, emitDelta func(deltaEntry) error) (bool, error) {
		if whereFn != nil {
			ok, err := whereFn(row)
			if err != nil {
				return false, err
			}
			if !ok.Truthy() {
				return false, nil
			}
		}
		return true, emitDelta(deltaEntry{rid: rid, op: opDelete, row: blank})
	})
	return n, "DELTA", err
}

// runDeltaJob scans the table (merge-on-read) and streams matching
// records into one new delta file per map task, under one transaction.
func (h *Handler) runDeltaJob(ec *hive.ExecContext, e *hive.Engine, desc *metastore.TableDesc, m *sim.Meter,
	visit func(tm *sim.Meter, row datum.Row, rid uint64, emitDelta func(deltaEntry) error) (bool, error)) (int64, error) {
	splits, err := h.Splits(desc, hive.ScanOptions{})
	if err != nil {
		return 0, err
	}
	txn := h.allocTxn(desc)
	dSchema := deltaSchema(desc)
	var taskCounter int64
	var mu sync.Mutex
	job := &mapred.Job{
		Name:   "acid-delta",
		Splits: splits,
		NewMapper: func() mapred.Mapper {
			dm := &deltaMapper{}
			dm.visit = visit
			dm.open = func(tm *sim.Meter) (*orcfile.Writer, *dfs.FileWriter, error) {
				mu.Lock()
				taskCounter++
				id := taskCounter
				mu.Unlock()
				name := fmt.Sprintf("delta-%06d-%04d.orc", txn, id)
				fw, err := h.e.FS.CreateMeter(path.Join(deltaDir(desc), name), tm)
				if err != nil {
					return nil, nil, err
				}
				w, err := orcfile.NewWriter(fw, dSchema, orcfile.WriterOptions{Compression: true})
				if err != nil {
					return nil, nil, err
				}
				return w, fw, nil
			}
			return dm
		},
	}
	res, err := e.MR.RunContext(ec.Context(), job)
	if err != nil {
		return 0, err
	}
	m.AddSeconds(res.SimSeconds)
	return res.Counters.OutputRecords, nil
}

// deltaMapper writes matching records to its task's delta file.
type deltaMapper struct {
	meter *sim.Meter
	visit func(*sim.Meter, datum.Row, uint64, func(deltaEntry) error) (bool, error)
	open  func(*sim.Meter) (*orcfile.Writer, *dfs.FileWriter, error)
	w     *orcfile.Writer
	fw    *dfs.FileWriter
}

func (dm *deltaMapper) SetMeter(m *sim.Meter) { dm.meter = m }

func (dm *deltaMapper) Map(row datum.Row, meta mapred.RecordMeta, emit mapred.Emitter) error {
	matched, err := dm.visit(dm.meter, row, meta.RecordID, func(d deltaEntry) error {
		if dm.w == nil {
			w, fw, err := dm.open(dm.meter)
			if err != nil {
				return err
			}
			dm.w, dm.fw = w, fw
		}
		out := make(datum.Row, 0, 2+len(d.row))
		out = append(out, datum.Int(int64(d.rid)), datum.Int(d.op))
		out = append(out, d.row...)
		return dm.w.WriteRow(out)
	})
	if err != nil {
		return err
	}
	if matched {
		return emit(nil, datum.Row{datum.Int(1)})
	}
	return nil
}

func (dm *deltaMapper) Flush(emit mapred.Emitter) error {
	if dm.w == nil {
		return nil
	}
	if err := dm.w.Close(); err != nil {
		return err
	}
	return dm.fw.Close()
}

// Compact implements COMPACT TABLE for ACID tables: a major
// compaction folding all deltas into a new base, cancellable between
// records via the execution context.
func (h *Handler) Compact(ec *hive.ExecContext, e *hive.Engine, desc *metastore.TableDesc, m *sim.Meter) error {
	if err := ec.Err(); err != nil {
		return err
	}
	splits, err := h.Splits(desc, hive.ScanOptions{})
	if err != nil {
		return err
	}
	factory, committer, err := h.Overwrite(desc)
	if err != nil {
		return err
	}
	job := &mapred.Job{
		Name:   "acid-major-compact",
		Splits: splits,
		NewMapper: func() mapred.Mapper {
			return mapred.MapFunc(func(row datum.Row, _ mapred.RecordMeta, emit mapred.Emitter) error {
				return emit(nil, row)
			})
		},
		Output: factory,
	}
	res, err := e.MR.RunContext(ec.Context(), job)
	if err != nil {
		committer.Abort()
		return err
	}
	m.AddSeconds(res.SimSeconds)
	return committer.Commit()
}
