package acid

import (
	"fmt"
	"strings"
	"testing"

	"dualtable/internal/core"
	"dualtable/internal/dfs"
	"dualtable/internal/hive"
	"dualtable/internal/kvstore"
	"dualtable/internal/mapred"
	"dualtable/internal/sim"
)

func testEngine(t *testing.T) (*hive.Engine, *Handler) {
	t.Helper()
	fs := dfs.New(dfs.Config{BlockSize: 1 << 20, Replication: 1, DataNodes: 4})
	kv, err := kvstore.NewCluster(fs, "/hbase", kvstore.DefaultStoreConfig())
	if err != nil {
		t.Fatal(err)
	}
	mr := mapred.NewCluster(sim.GridCluster())
	mr.Parallelism = 4
	e, err := hive.NewEngine(hive.Config{FS: fs, KV: kv, MR: mr})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.Register(e, core.Options{}); err != nil {
		t.Fatal(err)
	}
	h, err := Register(e)
	if err != nil {
		t.Fatal(err)
	}
	return e, h
}

func mustExec(t *testing.T, e *hive.Engine, sql string) *hive.ResultSet {
	t.Helper()
	rs, err := e.Execute(sql)
	if err != nil {
		t.Fatalf("Execute(%s): %v", sql, err)
	}
	return rs
}

func seed(t *testing.T, e *hive.Engine) {
	t.Helper()
	mustExec(t, e, "CREATE TABLE a (id BIGINT, grp BIGINT, v DOUBLE) STORED AS ACID")
	var sb strings.Builder
	sb.WriteString("INSERT INTO a VALUES ")
	for i := 0; i < 200; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d, %d.0)", i, i%10, i)
	}
	mustExec(t, e, sb.String())
}

func TestAcidCreateInsertSelect(t *testing.T) {
	e, _ := testEngine(t)
	seed(t, e)
	rs := mustExec(t, e, "SELECT COUNT(*) FROM a")
	if rs.Rows[0][0].I != 200 {
		t.Errorf("count = %v", rs.Rows[0])
	}
}

func TestAcidUpdateWritesDelta(t *testing.T) {
	e, h := testEngine(t)
	seed(t, e)
	rs := mustExec(t, e, "UPDATE a SET v = 999.0 WHERE grp = 3")
	if rs.Plan != "DELTA" || rs.Affected != 20 {
		t.Fatalf("update = %+v", rs)
	}
	desc, _ := e.MS.Get("a")
	n, err := h.DeltaFileCount(desc)
	if err != nil || n == 0 {
		t.Errorf("delta files = %d, %v", n, err)
	}
	got := mustExec(t, e, "SELECT COUNT(*) FROM a WHERE v = 999.0")
	if got.Rows[0][0].I != 20 {
		t.Errorf("merged view = %v", got.Rows[0])
	}
	// Untouched rows stay.
	got = mustExec(t, e, "SELECT v FROM a WHERE id = 0")
	if got.Rows[0][0].F != 0 {
		t.Errorf("untouched = %v", got.Rows[0])
	}
}

func TestAcidLastTransactionWins(t *testing.T) {
	e, _ := testEngine(t)
	seed(t, e)
	mustExec(t, e, "UPDATE a SET v = 1.0 WHERE id = 7")
	mustExec(t, e, "UPDATE a SET v = 2.0 WHERE id = 7")
	rs := mustExec(t, e, "SELECT v FROM a WHERE id = 7")
	if rs.Rows[0][0].F != 2 {
		t.Errorf("latest delta lost: %v", rs.Rows[0])
	}
}

func TestAcidDeleteHidesRows(t *testing.T) {
	e, _ := testEngine(t)
	seed(t, e)
	rs := mustExec(t, e, "DELETE FROM a WHERE grp = 5")
	if rs.Affected != 20 {
		t.Fatalf("delete affected = %d", rs.Affected)
	}
	got := mustExec(t, e, "SELECT COUNT(*) FROM a")
	if got.Rows[0][0].I != 180 {
		t.Errorf("count after delete = %v", got.Rows[0])
	}
}

func TestAcidUpdateThenDelete(t *testing.T) {
	e, _ := testEngine(t)
	seed(t, e)
	mustExec(t, e, "UPDATE a SET v = 5.0 WHERE id = 3")
	mustExec(t, e, "DELETE FROM a WHERE id = 3")
	rs := mustExec(t, e, "SELECT COUNT(*) FROM a WHERE id = 3")
	if rs.Rows[0][0].I != 0 {
		t.Errorf("deleted row visible: %v", rs.Rows[0])
	}
}

func TestAcidCompactFoldsDeltas(t *testing.T) {
	e, h := testEngine(t)
	seed(t, e)
	mustExec(t, e, "UPDATE a SET v = 1000.5 WHERE grp = 1")
	mustExec(t, e, "DELETE FROM a WHERE grp = 2")
	desc, _ := e.MS.Get("a")
	if n, _ := h.DeltaFileCount(desc); n == 0 {
		t.Fatal("expected deltas before compact")
	}
	mustExec(t, e, "COMPACT TABLE a")
	if n, _ := h.DeltaFileCount(desc); n != 0 {
		t.Errorf("deltas after compact = %d", n)
	}
	rs := mustExec(t, e, "SELECT COUNT(*) FROM a")
	if rs.Rows[0][0].I != 180 {
		t.Errorf("count after compact = %v", rs.Rows[0])
	}
	rs = mustExec(t, e, "SELECT COUNT(*) FROM a WHERE v = 1000.5")
	if rs.Rows[0][0].I != 20 {
		t.Errorf("updates lost in compact: %v", rs.Rows[0])
	}
}

// TestAcidVsDualTableAgreement: identical DML on ACID and DUALTABLE
// tables produces identical visible contents.
func TestAcidVsDualTableAgreement(t *testing.T) {
	e, _ := testEngine(t)
	for _, stor := range []string{"ACID", "DUALTABLE"} {
		name := map[string]string{"ACID": "x1", "DUALTABLE": "x2"}[stor]
		mustExec(t, e, fmt.Sprintf("CREATE TABLE %s (id BIGINT, grp BIGINT, v DOUBLE) STORED AS %s", name, stor))
		var sb strings.Builder
		fmt.Fprintf(&sb, "INSERT INTO %s VALUES ", name)
		for i := 0; i < 100; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d, %d.0)", i, i%8, i)
		}
		mustExec(t, e, sb.String())
		mustExec(t, e, fmt.Sprintf("UPDATE %s SET v = v * 2 WHERE grp = 4", name))
		mustExec(t, e, fmt.Sprintf("DELETE FROM %s WHERE grp = 6", name))
		mustExec(t, e, fmt.Sprintf("UPDATE %s SET v = -1.0 WHERE id < 5", name))
	}
	a := mustExec(t, e, "SELECT id, grp, v FROM x1 ORDER BY id")
	b := mustExec(t, e, "SELECT id, grp, v FROM x2 ORDER BY id")
	if len(a.Rows) != len(b.Rows) {
		t.Fatalf("row counts differ: %d vs %d", len(a.Rows), len(b.Rows))
	}
	for i := range a.Rows {
		if a.Rows[i].String() != b.Rows[i].String() {
			t.Errorf("row %d: acid %v vs dual %v", i, a.Rows[i], b.Rows[i])
		}
	}
}

// TestAcidReadAmplification: reads get slower as deltas pile up —
// the §V-C argument for DualTable's random-access attached table.
func TestAcidReadAmplification(t *testing.T) {
	e, _ := testEngine(t)
	seed(t, e)
	before := mustExec(t, e, "SELECT COUNT(*) FROM a")
	for i := 0; i < 10; i++ {
		mustExec(t, e, fmt.Sprintf("UPDATE a SET v = %d.5 WHERE grp = %d", i, i))
	}
	after := mustExec(t, e, "SELECT COUNT(*) FROM a")
	if after.SimSeconds <= before.SimSeconds {
		t.Errorf("merge-on-read should slow down with deltas: %.3f vs %.3f",
			after.SimSeconds, before.SimSeconds)
	}
}
