// Package metastore tracks table metadata for the query engine: the
// schema, the storage format (ORC on DFS, the key-value store, or
// DualTable's hybrid), and the storage location — the role Hive's
// metastore plays in the paper's Figure 3.
package metastore

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"dualtable/internal/datum"
)

// StorageKind identifies a table's storage handler.
type StorageKind uint8

// Storage kinds supported by the engine.
const (
	// StorageORC stores a directory of ORC files on the DFS — plain
	// Hive(HDFS) in the paper's experiments.
	StorageORC StorageKind = iota
	// StorageKV stores rows in the key-value store — the Hive(HBase)
	// baseline.
	StorageKV
	// StorageDual is the paper's hybrid: ORC master table + KV
	// attached table.
	StorageDual
	// StorageText is a delimited text directory on the DFS (LOAD DATA
	// sources).
	StorageText
	// StorageAcid is the Hive-ACID-style base + delta layout the paper
	// compares against conceptually in §V-C: both the original data
	// and the modification information live on the DFS, and reads
	// merge-sort the base with every delta.
	StorageAcid
)

// String names the storage kind as used in STORED AS clauses.
func (k StorageKind) String() string {
	switch k {
	case StorageORC:
		return "ORC"
	case StorageKV:
		return "HBASE"
	case StorageDual:
		return "DUALTABLE"
	case StorageText:
		return "TEXTFILE"
	case StorageAcid:
		return "ACID"
	default:
		return fmt.Sprintf("STORAGE(%d)", uint8(k))
	}
}

// KindFromName parses a STORED AS format name.
func KindFromName(name string) (StorageKind, error) {
	switch strings.ToUpper(name) {
	case "", "ORC":
		return StorageORC, nil
	case "HBASE", "KV":
		return StorageKV, nil
	case "DUALTABLE", "DUAL":
		return StorageDual, nil
	case "TEXTFILE", "TEXT":
		return StorageText, nil
	case "ACID":
		return StorageAcid, nil
	default:
		return StorageORC, fmt.Errorf("metastore: unknown storage format %q", name)
	}
}

// Errors returned by the metastore.
var (
	ErrTableExists   = errors.New("metastore: table already exists")
	ErrTableNotFound = errors.New("metastore: table not found")
)

// TableDesc describes one table.
type TableDesc struct {
	Name     string
	Schema   datum.Schema
	Storage  StorageKind
	Location string // DFS directory or KV table name (handler-specific)
	// Properties carries handler-specific settings (e.g. text
	// delimiter, attached-table name for DualTable).
	Properties map[string]string
}

// Clone deep-copies the descriptor.
func (d *TableDesc) Clone() *TableDesc {
	cp := *d
	cp.Schema = d.Schema.Clone()
	cp.Properties = make(map[string]string, len(d.Properties))
	for k, v := range d.Properties {
		cp.Properties[k] = v
	}
	return &cp
}

// Metastore is an in-memory catalog of tables. Names are
// case-insensitive, as in Hive.
type Metastore struct {
	mu     sync.RWMutex
	tables map[string]*TableDesc // key: lower-case name
	// manifests holds each table's epoch-numbered snapshot chain
	// (see manifest.go); it is keyed independently of tables so a
	// storage handler can publish the initial manifest during Create,
	// before the descriptor is registered.
	manifests map[string]*manifestChain
	// chainSeq assigns manifest chain identities (see manifestChain.id).
	chainSeq uint64
	// retention holds per-table pin-last-N-epochs overrides; absent
	// tables use defRetention (or DefaultRetentionEpochs when that was
	// never set).
	retention    map[string]int
	defRetention *int
}

// clampRetention bounds a retention window to what is actually
// serviceable: below 0 disables retention, and above the bounded
// manifest history there would be no manifest left to read — the files
// would stay pinned for epochs no ManifestAt can resolve.
func clampRetention(n int) int {
	if n < 0 {
		return 0
	}
	if n > manifestHistoryCap-1 {
		return manifestHistoryCap - 1
	}
	return n
}

// SetDefaultRetentionEpochs sets the metastore-wide pin-last-N-epochs
// retention default (how many historical epochs stay serviceable for
// AS OF EPOCH reads). Clamped to [0, 63]: 0 disables retention, and
// the manifest history itself is bounded at 64 epochs.
func (m *Metastore) SetDefaultRetentionEpochs(n int) {
	n = clampRetention(n)
	m.mu.Lock()
	defer m.mu.Unlock()
	m.defRetention = &n
}

// SetRetentionEpochs overrides the retention window for one table
// (clamped like SetDefaultRetentionEpochs).
func (m *Metastore) SetRetentionEpochs(table string, n int) {
	n = clampRetention(n)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.retention == nil {
		m.retention = map[string]int{}
	}
	m.retention[strings.ToLower(table)] = n
}

// RetentionEpochs resolves a table's pin-last-N-epochs window: the
// per-table override, else the metastore default, else
// DefaultRetentionEpochs.
func (m *Metastore) RetentionEpochs(table string) int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	if n, ok := m.retention[strings.ToLower(table)]; ok {
		return n
	}
	if m.defRetention != nil {
		return *m.defRetention
	}
	return DefaultRetentionEpochs
}

// New creates an empty metastore.
func New() *Metastore {
	return &Metastore{tables: map[string]*TableDesc{}}
}

// Create registers a table.
func (m *Metastore) Create(desc *TableDesc) error {
	if desc.Name == "" {
		return fmt.Errorf("metastore: empty table name")
	}
	if len(desc.Schema) == 0 {
		return fmt.Errorf("metastore: table %s has no columns", desc.Name)
	}
	seen := map[string]bool{}
	for _, c := range desc.Schema {
		lc := strings.ToLower(c.Name)
		if seen[lc] {
			return fmt.Errorf("metastore: duplicate column %q in table %s", c.Name, desc.Name)
		}
		seen[lc] = true
	}
	key := strings.ToLower(desc.Name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.tables[key]; ok {
		return fmt.Errorf("%w: %s", ErrTableExists, desc.Name)
	}
	if desc.Properties == nil {
		desc.Properties = map[string]string{}
	}
	m.tables[key] = desc.Clone()
	return nil
}

// Get returns the descriptor of a table (a copy).
func (m *Metastore) Get(name string) (*TableDesc, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	d, ok := m.tables[strings.ToLower(name)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrTableNotFound, name)
	}
	return d.Clone(), nil
}

// Exists reports whether the table is registered.
func (m *Metastore) Exists(name string) bool {
	m.mu.RLock()
	defer m.mu.RUnlock()
	_, ok := m.tables[strings.ToLower(name)]
	return ok
}

// Drop removes a table. The per-table retention override dies with
// the descriptor: a later CREATE of the same name starts from the
// metastore default instead of silently inheriting a stale window.
func (m *Metastore) Drop(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	key := strings.ToLower(name)
	if _, ok := m.tables[key]; !ok {
		return fmt.Errorf("%w: %s", ErrTableNotFound, name)
	}
	delete(m.tables, key)
	delete(m.retention, key)
	return nil
}

// List returns all table names, sorted.
func (m *Metastore) List() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	names := make([]string, 0, len(m.tables))
	for _, d := range m.tables {
		names = append(names, d.Name)
	}
	sort.Strings(names)
	return names
}

// TableProperty reads one property of a registered table without
// cloning the descriptor (publish-path hot accessor). ok is false when
// the table is not registered.
func (m *Metastore) TableProperty(name, key string) (string, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	d, ok := m.tables[strings.ToLower(name)]
	if !ok {
		return "", false
	}
	return d.Properties[key], true
}

// SetProperty updates one property of a registered table.
func (m *Metastore) SetProperty(name, key, value string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	d, ok := m.tables[strings.ToLower(name)]
	if !ok {
		return fmt.Errorf("%w: %s", ErrTableNotFound, name)
	}
	d.Properties[key] = value
	return nil
}
