package metastore

import (
	"errors"
	"testing"

	"dualtable/internal/datum"
)

func desc(name string) *TableDesc {
	return &TableDesc{
		Name:    name,
		Schema:  datum.Schema{{Name: "id", Kind: datum.KindInt}, {Name: "v", Kind: datum.KindFloat}},
		Storage: StorageORC,
	}
}

func TestCreateGetDrop(t *testing.T) {
	m := New()
	if err := m.Create(desc("T1")); err != nil {
		t.Fatal(err)
	}
	// Case-insensitive lookup, like Hive.
	d, err := m.Get("t1")
	if err != nil {
		t.Fatal(err)
	}
	if d.Name != "T1" || len(d.Schema) != 2 {
		t.Errorf("got %+v", d)
	}
	if !m.Exists("T1") || !m.Exists("t1") {
		t.Error("Exists should be case-insensitive")
	}
	if err := m.Create(desc("t1")); !errors.Is(err, ErrTableExists) {
		t.Errorf("duplicate create = %v", err)
	}
	if err := m.Drop("T1"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Get("t1"); !errors.Is(err, ErrTableNotFound) {
		t.Errorf("get after drop = %v", err)
	}
	if err := m.Drop("t1"); !errors.Is(err, ErrTableNotFound) {
		t.Errorf("double drop = %v", err)
	}
}

func TestCreateValidation(t *testing.T) {
	m := New()
	if err := m.Create(&TableDesc{Name: "", Schema: datum.Schema{{Name: "a", Kind: datum.KindInt}}}); err == nil {
		t.Error("empty name should fail")
	}
	if err := m.Create(&TableDesc{Name: "t"}); err == nil {
		t.Error("empty schema should fail")
	}
	dup := &TableDesc{Name: "t", Schema: datum.Schema{
		{Name: "a", Kind: datum.KindInt}, {Name: "A", Kind: datum.KindFloat}}}
	if err := m.Create(dup); err == nil {
		t.Error("duplicate column (case-insensitive) should fail")
	}
}

func TestGetReturnsCopy(t *testing.T) {
	m := New()
	m.Create(desc("t"))
	d1, _ := m.Get("t")
	d1.Schema[0].Name = "mutated"
	d1.Properties["x"] = "y"
	d2, _ := m.Get("t")
	if d2.Schema[0].Name != "id" {
		t.Error("Get must return a copy of the schema")
	}
	if _, ok := d2.Properties["x"]; ok {
		t.Error("Get must return a copy of the properties")
	}
}

func TestListSorted(t *testing.T) {
	m := New()
	m.Create(desc("zeta"))
	m.Create(desc("alpha"))
	got := m.List()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Errorf("List = %v", got)
	}
}

func TestSetProperty(t *testing.T) {
	m := New()
	m.Create(desc("t"))
	if err := m.SetProperty("T", "k", "v"); err != nil {
		t.Fatal(err)
	}
	d, _ := m.Get("t")
	if d.Properties["k"] != "v" {
		t.Errorf("property = %v", d.Properties)
	}
	if err := m.SetProperty("nope", "k", "v"); !errors.Is(err, ErrTableNotFound) {
		t.Errorf("missing table = %v", err)
	}
}

func TestStorageKindNames(t *testing.T) {
	cases := map[string]StorageKind{
		"": StorageORC, "ORC": StorageORC, "HBASE": StorageKV, "kv": StorageKV,
		"DUALTABLE": StorageDual, "dual": StorageDual,
		"TEXTFILE": StorageText, "ACID": StorageAcid,
	}
	for name, want := range cases {
		got, err := KindFromName(name)
		if err != nil || got != want {
			t.Errorf("KindFromName(%q) = %v, %v", name, got, err)
		}
	}
	if _, err := KindFromName("PARQUET"); err == nil {
		t.Error("unknown format should fail")
	}
	for _, k := range []StorageKind{StorageORC, StorageKV, StorageDual, StorageText, StorageAcid} {
		if k.String() == "" {
			t.Errorf("kind %d has empty name", k)
		}
		back, err := KindFromName(k.String())
		if err != nil || back != k {
			t.Errorf("roundtrip %v: %v %v", k, back, err)
		}
	}
}

func TestManifestPublishCAS(t *testing.T) {
	m := New()
	base := &Manifest{Table: "T", Epoch: 0, Watermark: 5,
		Files: []ManifestFile{{Path: "/w/t/master/m-1.orc", Size: 100, FileID: 1, Rows: 10}}}
	if err := m.PublishManifest(base); err != nil {
		t.Fatal(err)
	}
	// Names are case-insensitive, manifests are copies.
	cur, err := m.CurrentManifest("t")
	if err != nil {
		t.Fatal(err)
	}
	cur.Files[0].Path = "mutated"
	cur2, _ := m.CurrentManifest("T")
	if cur2.Files[0].Path != "/w/t/master/m-1.orc" {
		t.Error("CurrentManifest must return a copy")
	}
	// CAS: skipping an epoch or republishing the same epoch fails.
	if err := m.PublishManifest(&Manifest{Table: "t", Epoch: 0}); !errors.Is(err, ErrEpochConflict) {
		t.Errorf("same-epoch publish: %v", err)
	}
	if err := m.PublishManifest(&Manifest{Table: "t", Epoch: 2}); !errors.Is(err, ErrEpochConflict) {
		t.Errorf("skipped-epoch publish: %v", err)
	}
	if err := m.PublishManifest(&Manifest{Table: "t", Epoch: 1, Watermark: 9}); err != nil {
		t.Fatal(err)
	}
	// History: both epochs resolvable; unknown table and future epoch
	// fail.
	old, err := m.ManifestAt("t", 0)
	if err != nil || len(old.Files) != 1 {
		t.Fatalf("ManifestAt(0): %v", err)
	}
	if _, err := m.ManifestAt("t", 7); err == nil {
		t.Error("future epoch should fail")
	}
	if _, err := m.CurrentManifest("nope"); !errors.Is(err, ErrNoManifest) {
		t.Errorf("missing chain: %v", err)
	}
	// Drop clears the chain; a fresh epoch-0 publish then succeeds.
	m.DropManifests("T")
	if _, err := m.CurrentManifest("t"); !errors.Is(err, ErrNoManifest) {
		t.Errorf("after drop: %v", err)
	}
	if err := m.PublishManifest(&Manifest{Table: "t", Epoch: 0}); err != nil {
		t.Errorf("re-create after drop: %v", err)
	}
}

func TestManifestHistoryBounded(t *testing.T) {
	m := New()
	if err := m.PublishManifest(&Manifest{Table: "t", Epoch: 0}); err != nil {
		t.Fatal(err)
	}
	for e := uint64(1); e <= 200; e++ {
		if err := m.PublishManifest(&Manifest{Table: "t", Epoch: e}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.ManifestAt("t", 200); err != nil {
		t.Errorf("current epoch must stay resolvable: %v", err)
	}
	if _, err := m.ManifestAt("t", 0); !errors.Is(err, ErrEpochExpired) {
		t.Errorf("ancient epoch should be expired: %v", err)
	}
}
