package metastore

import (
	"errors"
	"testing"

	"dualtable/internal/datum"
)

func publishN(t *testing.T, m *Metastore, table string, upto uint64) {
	t.Helper()
	for e := uint64(0); e <= upto; e++ {
		err := m.PublishManifest(&Manifest{Table: table, Epoch: e, Watermark: e * 10,
			Files: []ManifestFile{{Path: "/f", FileID: uint32(e)}}})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestManifestAtErrorSentinels(t *testing.T) {
	m := New()
	publishN(t, m, "t", 3)
	// Present epochs resolve.
	man, err := m.ManifestAt("t", 2)
	if err != nil || man.Epoch != 2 {
		t.Fatalf("ManifestAt(2) = %v, %v", man, err)
	}
	// Future epoch: never published.
	if _, err := m.ManifestAt("t", 9); !errors.Is(err, ErrEpochFuture) {
		t.Fatalf("future epoch error = %v, want ErrEpochFuture", err)
	}
	if _, err := m.ManifestAt("t", 9); errors.Is(err, ErrEpochExpired) {
		t.Fatal("future epoch must not also match ErrEpochExpired")
	}
	// Aged-out epoch: publish past the history cap.
	for e := uint64(4); e <= manifestHistoryCap+5; e++ {
		if err := m.PublishManifest(&Manifest{Table: "t", Epoch: e}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.ManifestAt("t", 0); !errors.Is(err, ErrEpochExpired) {
		t.Fatalf("aged-out epoch error = %v, want ErrEpochExpired", err)
	}
	// Unknown table.
	if _, err := m.ManifestAt("nope", 0); !errors.Is(err, ErrNoManifest) {
		t.Fatalf("unknown table error = %v, want ErrNoManifest", err)
	}
}

func TestPublishWatermarkSharesFileSet(t *testing.T) {
	m := New()
	publishN(t, m, "t", 1)
	before, _ := m.CurrentManifest("t")
	ep, err := m.PublishWatermark("t", 777)
	if err != nil || ep != 2 {
		t.Fatalf("PublishWatermark = %d, %v", ep, err)
	}
	cur, _ := m.CurrentManifest("t")
	if cur.Epoch != 2 || cur.Watermark != 777 {
		t.Fatalf("current = %+v", cur)
	}
	if len(cur.Files) != len(before.Files) || cur.Files[0] != before.Files[0] {
		t.Fatalf("watermark publish changed the file set: %+v", cur.Files)
	}
	// The previous epoch stays in history with its old watermark.
	old, err := m.ManifestAt("t", 1)
	if err != nil || old.Watermark != 10 {
		t.Fatalf("ManifestAt(1) = %+v, %v", old, err)
	}
	// A regular CAS publish still applies after the fast path.
	if err := m.PublishManifest(&Manifest{Table: "t", Epoch: 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := m.PublishWatermark("missing", 1); !errors.Is(err, ErrNoManifest) {
		t.Fatalf("watermark on missing table = %v, want ErrNoManifest", err)
	}
}

func TestManifestChainIdentity(t *testing.T) {
	m := New()
	publishN(t, m, "t", 0)
	id1, ok := m.ManifestChainID("t")
	if !ok {
		t.Fatal("no chain id")
	}
	// A re-created chain gets a new identity; the stale id no longer
	// deletes it (the deferred-DROP safety property).
	m.DropManifests("t")
	publishN(t, m, "t", 0)
	id2, ok := m.ManifestChainID("t")
	if !ok || id2 == id1 {
		t.Fatalf("chain ids: %d then %d, want distinct", id1, id2)
	}
	m.DropManifestsByID("t", id1) // stale: must be a no-op
	if _, err := m.CurrentManifest("t"); err != nil {
		t.Fatalf("stale DropManifestsByID removed the live chain: %v", err)
	}
	m.DropManifestsByID("t", id2)
	if _, err := m.CurrentManifest("t"); !errors.Is(err, ErrNoManifest) {
		t.Fatalf("matching DropManifestsByID left the chain: %v", err)
	}
}

func TestRetentionEpochKnobs(t *testing.T) {
	m := New()
	if n := m.RetentionEpochs("t"); n != DefaultRetentionEpochs {
		t.Fatalf("default retention = %d, want %d", n, DefaultRetentionEpochs)
	}
	m.SetDefaultRetentionEpochs(3)
	if n := m.RetentionEpochs("t"); n != 3 {
		t.Fatalf("metastore default = %d, want 3", n)
	}
	m.SetRetentionEpochs("T", 5) // case-insensitive
	if n := m.RetentionEpochs("t"); n != 5 {
		t.Fatalf("per-table retention = %d, want 5", n)
	}
	if n := m.RetentionEpochs("other"); n != 3 {
		t.Fatalf("other table retention = %d, want 3", n)
	}
	m.SetRetentionEpochs("t", -4) // clamps to 0 (disabled)
	if n := m.RetentionEpochs("t"); n != 0 {
		t.Fatalf("negative retention = %d, want 0", n)
	}
	// Windows wider than the bounded manifest history are unserviceable
	// (no manifest left to read); clamp instead of pinning files for
	// epochs ManifestAt can never resolve.
	m.SetRetentionEpochs("t", 10000)
	if n := m.RetentionEpochs("t"); n != manifestHistoryCap-1 {
		t.Fatalf("oversized retention = %d, want %d", n, manifestHistoryCap-1)
	}
}

func TestRetentionOverrideDiesWithTable(t *testing.T) {
	m := New()
	if err := m.Create(&TableDesc{Name: "t",
		Schema: datum.Schema{{Name: "id", Kind: datum.KindInt}}}); err != nil {
		t.Fatal(err)
	}
	m.SetRetentionEpochs("t", 0)
	if err := m.Drop("t"); err != nil {
		t.Fatal(err)
	}
	// A re-created table uses the default again, not the stale 0.
	if n := m.RetentionEpochs("t"); n != DefaultRetentionEpochs {
		t.Fatalf("retention after drop = %d, want default %d", n, DefaultRetentionEpochs)
	}
}
