package metastore

import (
	"errors"
	"fmt"
	"strings"
)

// Manifest errors.
var (
	// ErrNoManifest is returned when a table has no manifest chain yet.
	ErrNoManifest = errors.New("metastore: table has no manifest")
	// ErrEpochConflict is returned when a publish loses the
	// compare-and-swap on the current epoch (another writer published
	// first).
	ErrEpochConflict = errors.New("metastore: manifest epoch conflict")
	// ErrEpochExpired is returned when a historical epoch has been
	// garbage-collected from the chain.
	ErrEpochExpired = errors.New("metastore: manifest epoch expired")
)

// manifestHistoryCap bounds the per-table manifest chain kept for
// historical lookups (ManifestAt). The current manifest never expires.
const manifestHistoryCap = 64

// ManifestFile describes one immutable master file of a snapshot.
type ManifestFile struct {
	Path   string
	Size   int64
	FileID uint32
	Rows   int64
}

// Manifest is one immutable, epoch-numbered snapshot of a table's
// storage: the exact master file set plus the attached-table watermark
// (the key-value timestamp up to which attached modifications belong
// to this epoch). Writers publish a new manifest with an atomic
// compare-and-swap instead of mutating file lists in place; scans
// resolve one manifest at open and read those exact files to
// completion, so a snapshot read is repeatable regardless of
// concurrent COMPACT or OVERWRITE.
type Manifest struct {
	Table string
	Epoch uint64
	// Watermark is the attached-table visibility ceiling: a scan
	// pinned at this epoch applies only attached cells with
	// timestamp <= Watermark.
	Watermark uint64
	Files     []ManifestFile
}

// Clone deep-copies the manifest.
func (m *Manifest) Clone() *Manifest {
	cp := *m
	cp.Files = append([]ManifestFile(nil), m.Files...)
	return &cp
}

// manifestChain is one table's epoch history, newest last.
type manifestChain struct {
	current *Manifest
	history []*Manifest // includes current as the last element
}

// manifests lazily allocates the manifest map. Caller holds m.mu.
func (m *Metastore) manifestsLocked() map[string]*manifestChain {
	if m.manifests == nil {
		m.manifests = map[string]*manifestChain{}
	}
	return m.manifests
}

// PublishManifest installs a new current manifest for the table with
// compare-and-swap semantics: the new epoch must be exactly one past
// the current epoch (or any starting epoch when the table has no
// chain yet). On success the previous manifest stays readable through
// ManifestAt until it ages out of the bounded history.
func (m *Metastore) PublishManifest(man *Manifest) error {
	if man.Table == "" {
		return fmt.Errorf("metastore: manifest without table name")
	}
	key := strings.ToLower(man.Table)
	m.mu.Lock()
	defer m.mu.Unlock()
	chains := m.manifestsLocked()
	ch, ok := chains[key]
	cp := man.Clone()
	if !ok {
		chains[key] = &manifestChain{current: cp, history: []*Manifest{cp}}
		return nil
	}
	if man.Epoch != ch.current.Epoch+1 {
		return fmt.Errorf("%w: %s publish epoch %d, current %d",
			ErrEpochConflict, man.Table, man.Epoch, ch.current.Epoch)
	}
	ch.current = cp
	ch.history = append(ch.history, cp)
	if len(ch.history) > manifestHistoryCap {
		ch.history = ch.history[len(ch.history)-manifestHistoryCap:]
	}
	return nil
}

// CurrentManifest returns a copy of the table's current manifest.
func (m *Metastore) CurrentManifest(table string) (*Manifest, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	ch, ok := m.manifests[strings.ToLower(table)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoManifest, table)
	}
	return ch.current.Clone(), nil
}

// ManifestAt returns a copy of the manifest at a historical epoch
// (the basis for time-travel reads). Epochs older than the bounded
// history return ErrEpochExpired.
func (m *Metastore) ManifestAt(table string, epoch uint64) (*Manifest, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	ch, ok := m.manifests[strings.ToLower(table)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoManifest, table)
	}
	for _, man := range ch.history {
		if man.Epoch == epoch {
			return man.Clone(), nil
		}
	}
	if epoch < ch.current.Epoch {
		return nil, fmt.Errorf("%w: %s epoch %d (current %d)", ErrEpochExpired, table, epoch, ch.current.Epoch)
	}
	return nil, fmt.Errorf("%w: %s epoch %d not published (current %d)",
		ErrNoManifest, table, epoch, ch.current.Epoch)
}

// DropManifests removes a table's manifest chain (DROP TABLE).
func (m *Metastore) DropManifests(table string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.manifests, strings.ToLower(table))
}
