package metastore

import (
	"errors"
	"fmt"
	"strings"
)

// Manifest errors.
var (
	// ErrNoManifest is returned when a table has no manifest chain yet.
	ErrNoManifest = errors.New("metastore: table has no manifest")
	// ErrEpochConflict is returned when a publish loses the
	// compare-and-swap on the current epoch (another writer published
	// first).
	ErrEpochConflict = errors.New("metastore: manifest epoch conflict")
	// ErrEpochExpired is returned when a historical epoch has been
	// garbage-collected from the chain (or its files have been
	// reclaimed past the retention window).
	ErrEpochExpired = errors.New("metastore: manifest epoch expired")
	// ErrEpochFuture is returned when the requested epoch was never
	// published: it lies beyond the table's current epoch.
	ErrEpochFuture = errors.New("metastore: manifest epoch not published yet")
)

// DefaultRetentionEpochs is the pin-last-N-epochs retention default:
// the files of the last N historical epochs stay pinned against
// deferred deletion, so AS OF EPOCH reads within the window are
// serviceable instead of racing the reaper. 0 disables retention
// (historical epochs become unreadable as soon as their files are
// superseded and unpinned).
const DefaultRetentionEpochs = 8

// manifestHistoryCap bounds the per-table manifest chain kept for
// historical lookups (ManifestAt). The current manifest never expires.
const manifestHistoryCap = 64

// ManifestFile describes one immutable master file of a snapshot.
type ManifestFile struct {
	Path   string
	Size   int64
	FileID uint32
	Rows   int64
}

// Manifest is one immutable, epoch-numbered snapshot of a table's
// storage: the exact master file set plus the attached-table watermark
// (the key-value timestamp up to which attached modifications belong
// to this epoch). Writers publish a new manifest with an atomic
// compare-and-swap instead of mutating file lists in place; scans
// resolve one manifest at open and read those exact files to
// completion, so a snapshot read is repeatable regardless of
// concurrent COMPACT or OVERWRITE.
type Manifest struct {
	Table string
	Epoch uint64
	// Watermark is the attached-table visibility ceiling: a scan
	// pinned at this epoch applies only attached cells with
	// timestamp <= Watermark.
	Watermark uint64
	Files     []ManifestFile
}

// Clone deep-copies the manifest.
func (m *Manifest) Clone() *Manifest {
	cp := *m
	cp.Files = append([]ManifestFile(nil), m.Files...)
	return &cp
}

// manifestChain is one table's epoch history, newest last. The id is
// unique per chain incarnation: a DROP whose reclamation is pending
// records it, so a deferred chain removal cannot destroy the chain a
// re-CREATE of the same name published meanwhile.
type manifestChain struct {
	id      uint64
	current *Manifest
	history []*Manifest // includes current as the last element
}

// manifests lazily allocates the manifest map. Caller holds m.mu.
func (m *Metastore) manifestsLocked() map[string]*manifestChain {
	if m.manifests == nil {
		m.manifests = map[string]*manifestChain{}
	}
	return m.manifests
}

// PublishManifest installs a new current manifest for the table with
// compare-and-swap semantics: the new epoch must be exactly one past
// the current epoch (or any starting epoch when the table has no
// chain yet). On success the previous manifest stays readable through
// ManifestAt until it ages out of the bounded history.
func (m *Metastore) PublishManifest(man *Manifest) error {
	if man.Table == "" {
		return fmt.Errorf("metastore: manifest without table name")
	}
	key := strings.ToLower(man.Table)
	m.mu.Lock()
	defer m.mu.Unlock()
	chains := m.manifestsLocked()
	ch, ok := chains[key]
	cp := man.Clone()
	if !ok {
		m.chainSeq++
		chains[key] = &manifestChain{id: m.chainSeq, current: cp, history: []*Manifest{cp}}
		return nil
	}
	if man.Epoch != ch.current.Epoch+1 {
		return fmt.Errorf("%w: %s publish epoch %d, current %d",
			ErrEpochConflict, man.Table, man.Epoch, ch.current.Epoch)
	}
	ch.current = cp
	ch.history = append(ch.history, cp)
	if len(ch.history) > manifestHistoryCap {
		ch.history = ch.history[len(ch.history)-manifestHistoryCap:]
	}
	return nil
}

// PublishWatermark publishes the next epoch with the current file set
// unchanged and a fresh watermark — the EDIT DML commit point. Unlike
// PublishManifest, it shares the current manifest's file slice instead
// of copying it twice (manifests are immutable after publish, and
// every read path hands out clones), so a watermark-only commit does
// no per-file work at all. Returns the published epoch.
func (m *Metastore) PublishWatermark(table string, watermark uint64) (uint64, error) {
	key := strings.ToLower(table)
	m.mu.Lock()
	defer m.mu.Unlock()
	ch, ok := m.manifests[key]
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNoManifest, table)
	}
	cur := ch.current
	next := &Manifest{
		Table:     cur.Table,
		Epoch:     cur.Epoch + 1,
		Watermark: watermark,
		Files:     cur.Files, // shared; manifests are immutable
	}
	ch.current = next
	ch.history = append(ch.history, next)
	if len(ch.history) > manifestHistoryCap {
		ch.history = ch.history[len(ch.history)-manifestHistoryCap:]
	}
	return next.Epoch, nil
}

// CurrentManifest returns a copy of the table's current manifest.
func (m *Metastore) CurrentManifest(table string) (*Manifest, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	ch, ok := m.manifests[strings.ToLower(table)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoManifest, table)
	}
	return ch.current.Clone(), nil
}

// ManifestAt returns a copy of the manifest at a historical epoch
// (the basis for time-travel reads). The two failure modes carry
// distinct sentinels: epochs that aged out of the bounded history
// return ErrEpochExpired, epochs beyond the current one (never
// published) return ErrEpochFuture.
func (m *Metastore) ManifestAt(table string, epoch uint64) (*Manifest, error) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	ch, ok := m.manifests[strings.ToLower(table)]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNoManifest, table)
	}
	for _, man := range ch.history {
		if man.Epoch == epoch {
			return man.Clone(), nil
		}
	}
	if epoch < ch.current.Epoch {
		return nil, fmt.Errorf("%w: %s epoch %d aged out of history (current %d)",
			ErrEpochExpired, table, epoch, ch.current.Epoch)
	}
	return nil, fmt.Errorf("%w: %s epoch %d (current %d)",
		ErrEpochFuture, table, epoch, ch.current.Epoch)
}

// ManifestHistoryFiles returns the set of file paths referenced by any
// manifest still in the table's bounded history — every file a current
// or time-travel read could legitimately resolve. ok is false when the
// table has no manifest chain. A startup recovery scan treats master
// files outside this set as orphans of a crashed publish.
func (m *Metastore) ManifestHistoryFiles(table string) (map[string]bool, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	ch, ok := m.manifests[strings.ToLower(table)]
	if !ok {
		return nil, false
	}
	files := map[string]bool{}
	for _, man := range ch.history {
		for _, f := range man.Files {
			files[f.Path] = true
		}
	}
	return files, true
}

// ManifestChainID returns the identity of the table's current manifest
// chain (false when the table has no chain). A pin-aware DROP records
// it so the deferred chain removal at last-pin release cannot destroy
// a chain a re-CREATE published under the same name meanwhile.
func (m *Metastore) ManifestChainID(table string) (uint64, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	ch, ok := m.manifests[strings.ToLower(table)]
	if !ok {
		return 0, false
	}
	return ch.id, true
}

// DropManifests removes a table's manifest chain (DROP TABLE).
func (m *Metastore) DropManifests(table string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	delete(m.manifests, strings.ToLower(table))
}

// DropManifestsByID removes the table's manifest chain only when its
// identity still matches — the deferred-reclamation path of a
// pin-aware DROP. A chain republished by a re-CREATE (different id)
// is left untouched.
func (m *Metastore) DropManifestsByID(table string, id uint64) {
	key := strings.ToLower(table)
	m.mu.Lock()
	defer m.mu.Unlock()
	if ch, ok := m.manifests[key]; ok && ch.id == id {
		delete(m.manifests, key)
	}
}
