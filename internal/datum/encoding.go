package datum

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Binary encoding for datums and rows. The format is self-describing
// (a kind tag precedes each value) and uses varints so small integers
// stay small. It is used for key-value store cells, WAL records, and
// the MapReduce shuffle.
//
//	NULL   -> 0x00
//	INT    -> 0x01 zigzag-varint
//	FLOAT  -> 0x02 8-byte little-endian IEEE bits
//	STRING -> 0x03 uvarint(len) bytes
//	BOOL   -> 0x04 0x00|0x01

// AppendDatum appends the binary encoding of d to dst.
func AppendDatum(dst []byte, d Datum) []byte {
	switch d.K {
	case KindNull:
		return append(dst, 0x00)
	case KindInt:
		dst = append(dst, 0x01)
		return binary.AppendVarint(dst, d.I)
	case KindFloat:
		dst = append(dst, 0x02)
		return binary.LittleEndian.AppendUint64(dst, math.Float64bits(d.F))
	case KindString:
		dst = append(dst, 0x03)
		dst = binary.AppendUvarint(dst, uint64(len(d.S)))
		return append(dst, d.S...)
	case KindBool:
		dst = append(dst, 0x04)
		if d.B {
			return append(dst, 1)
		}
		return append(dst, 0)
	default:
		panic(fmt.Sprintf("datum: encode unknown kind %d", d.K))
	}
}

// DecodeDatum decodes one datum from b, returning the datum and the
// number of bytes consumed.
func DecodeDatum(b []byte) (Datum, int, error) {
	if len(b) == 0 {
		return Null, 0, fmt.Errorf("datum: decode empty buffer")
	}
	switch b[0] {
	case 0x00:
		return Null, 1, nil
	case 0x01:
		v, n := binary.Varint(b[1:])
		if n <= 0 {
			return Null, 0, fmt.Errorf("datum: bad varint")
		}
		return Int(v), 1 + n, nil
	case 0x02:
		if len(b) < 9 {
			return Null, 0, fmt.Errorf("datum: short float")
		}
		return Float(math.Float64frombits(binary.LittleEndian.Uint64(b[1:9]))), 9, nil
	case 0x03:
		l, n := binary.Uvarint(b[1:])
		if n <= 0 {
			return Null, 0, fmt.Errorf("datum: bad string length")
		}
		start := 1 + n
		end := start + int(l)
		if end > len(b) || end < start {
			return Null, 0, fmt.Errorf("datum: short string (want %d bytes)", l)
		}
		return String_(string(b[start:end])), end, nil
	case 0x04:
		if len(b) < 2 {
			return Null, 0, fmt.Errorf("datum: short bool")
		}
		return Bool(b[1] != 0), 2, nil
	default:
		return Null, 0, fmt.Errorf("datum: unknown kind tag 0x%02x", b[0])
	}
}

// AppendRow appends the binary encoding of r (arity-prefixed) to dst.
func AppendRow(dst []byte, r Row) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(r)))
	for _, d := range r {
		dst = AppendDatum(dst, d)
	}
	return dst
}

// DecodeRow decodes one row from b, returning the row and bytes
// consumed.
func DecodeRow(b []byte) (Row, int, error) {
	arity, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, 0, fmt.Errorf("datum: bad row arity")
	}
	off := n
	row := make(Row, 0, arity)
	for i := uint64(0); i < arity; i++ {
		d, dn, err := DecodeDatum(b[off:])
		if err != nil {
			return nil, 0, fmt.Errorf("datum: row column %d: %w", i, err)
		}
		row = append(row, d)
		off += dn
	}
	return row, off, nil
}

// EncodeRow is AppendRow into a fresh buffer.
func EncodeRow(r Row) []byte { return AppendRow(nil, r) }

// EncodedSize returns the number of bytes AppendDatum would emit. Used
// by the cost model to estimate payload sizes without encoding.
func EncodedSize(d Datum) int {
	switch d.K {
	case KindNull:
		return 1
	case KindInt:
		return 1 + varintLen(d.I)
	case KindFloat:
		return 9
	case KindString:
		return 1 + uvarintLen(uint64(len(d.S))) + len(d.S)
	case KindBool:
		return 2
	default:
		return 1
	}
}

// RowEncodedSize returns the byte size of the encoded row.
func RowEncodedSize(r Row) int {
	n := uvarintLen(uint64(len(r)))
	for _, d := range r {
		n += EncodedSize(d)
	}
	return n
}

func uvarintLen(v uint64) int {
	n := 1
	for v >= 0x80 {
		v >>= 7
		n++
	}
	return n
}

func varintLen(v int64) int {
	uv := uint64(v) << 1
	if v < 0 {
		uv = ^uv
	}
	return uvarintLen(uv)
}

// SortableKey appends an order-preserving binary encoding of d: the
// byte comparison of two encoded keys matches Compare of the datums
// (for same-kind or numeric values). Used for shuffle sort keys.
//
//	NULL   -> 0x00
//	number -> 0x01 8-byte big-endian of float bits with sign flip
//	STRING -> 0x02 escaped bytes terminated by 0x00 0x01
//	BOOL   -> 0x03 0x00|0x01
func SortableKey(dst []byte, d Datum) []byte {
	switch d.K {
	case KindNull:
		return append(dst, 0x00)
	case KindInt, KindFloat:
		f, _ := d.AsFloat()
		bits := math.Float64bits(f)
		// Flip so that byte order matches numeric order: positive
		// numbers get the sign bit set, negatives are inverted.
		if bits&(1<<63) != 0 {
			bits = ^bits
		} else {
			bits |= 1 << 63
		}
		dst = append(dst, 0x01)
		return binary.BigEndian.AppendUint64(dst, bits)
	case KindString:
		dst = append(dst, 0x02)
		for i := 0; i < len(d.S); i++ {
			c := d.S[i]
			if c == 0x00 {
				dst = append(dst, 0x00, 0xFF)
			} else {
				dst = append(dst, c)
			}
		}
		return append(dst, 0x00, 0x01)
	case KindBool:
		dst = append(dst, 0x03)
		if d.B {
			return append(dst, 0x01)
		}
		return append(dst, 0x00)
	default:
		return append(dst, 0xFF)
	}
}

// SortableRowKey appends the order-preserving encoding of each datum
// of r, producing a composite key whose byte order matches
// CompareRows for numeric/same-kind columns.
func SortableRowKey(dst []byte, r Row) []byte {
	for _, d := range r {
		dst = SortableKey(dst, d)
	}
	return dst
}
