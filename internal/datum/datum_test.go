package datum

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull:   "NULL",
		KindInt:    "BIGINT",
		KindFloat:  "DOUBLE",
		KindString: "STRING",
		KindBool:   "BOOLEAN",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestKindFromSQL(t *testing.T) {
	cases := map[string]Kind{
		"INT": KindInt, "bigint": KindInt, "SMALLINT": KindInt,
		"DOUBLE": KindFloat, "float": KindFloat, "DECIMAL": KindFloat,
		"STRING": KindString, "varchar": KindString, "DATE": KindString,
		"BOOLEAN": KindBool, " bool ": KindBool,
	}
	for name, want := range cases {
		got, err := KindFromSQL(name)
		if err != nil {
			t.Fatalf("KindFromSQL(%q): %v", name, err)
		}
		if got != want {
			t.Errorf("KindFromSQL(%q) = %v, want %v", name, got, want)
		}
	}
	if _, err := KindFromSQL("BLOB"); err == nil {
		t.Error("KindFromSQL(BLOB) should fail")
	}
}

func TestDatumString(t *testing.T) {
	cases := []struct {
		d    Datum
		want string
	}{
		{Null, "NULL"},
		{Int(42), "42"},
		{Int(-7), "-7"},
		{Float(3.5), "3.5"},
		{String_("hi"), "hi"},
		{Bool(true), "true"},
		{Bool(false), "false"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.d, got, c.want)
		}
	}
}

func TestSQLLiteralQuotesStrings(t *testing.T) {
	if got := String_("it's").SQLLiteral(); got != "'it''s'" {
		t.Errorf("SQLLiteral = %q", got)
	}
	if got := Int(5).SQLLiteral(); got != "5" {
		t.Errorf("SQLLiteral = %q", got)
	}
}

func TestAsFloatAsInt(t *testing.T) {
	if f, ok := Int(7).AsFloat(); !ok || f != 7 {
		t.Errorf("Int(7).AsFloat() = %v,%v", f, ok)
	}
	if f, ok := String_("2.5").AsFloat(); !ok || f != 2.5 {
		t.Errorf("String(2.5).AsFloat() = %v,%v", f, ok)
	}
	if _, ok := String_("xyz").AsFloat(); ok {
		t.Error("String(xyz).AsFloat() should fail")
	}
	if i, ok := Float(9.9).AsInt(); !ok || i != 9 {
		t.Errorf("Float(9.9).AsInt() = %v,%v", i, ok)
	}
	if i, ok := Bool(true).AsInt(); !ok || i != 1 {
		t.Errorf("Bool(true).AsInt() = %v,%v", i, ok)
	}
	if _, ok := Null.AsFloat(); ok {
		t.Error("Null.AsFloat() should fail")
	}
}

func TestCompareOrdering(t *testing.T) {
	// NULL sorts first, then numerics by value, cross int/float works.
	asc := []Datum{Null, Int(-5), Float(-1.5), Int(0), Float(0.5), Int(1), Float(1e9)}
	for i := 0; i < len(asc); i++ {
		for j := 0; j < len(asc); j++ {
			got := Compare(asc[i], asc[j])
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got != want {
				t.Errorf("Compare(%v,%v) = %d, want %d", asc[i], asc[j], got, want)
			}
		}
	}
	if Compare(String_("a"), String_("b")) != -1 {
		t.Error("string compare broken")
	}
	if Compare(Bool(false), Bool(true)) != -1 {
		t.Error("bool compare broken")
	}
	if Compare(Int(1), Int(1)) != 0 || Compare(Int(1), Float(1)) != 0 {
		t.Error("equal numeric compare broken")
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	if Int(3).Hash() != Float(3).Hash() {
		t.Error("Int(3) and Float(3) compare equal but hash differently")
	}
	if Int(3).Hash() == Int(4).Hash() {
		t.Error("suspicious hash collision Int(3)/Int(4)")
	}
	if Float(0).Hash() != Float(math.Copysign(0, -1)).Hash() {
		t.Error("+0.0 and -0.0 hash differently")
	}
}

func TestCoerce(t *testing.T) {
	d, err := Coerce(String_("12"), KindInt)
	if err != nil || d.I != 12 {
		t.Errorf("Coerce string->int: %v, %v", d, err)
	}
	d, err = Coerce(Int(3), KindFloat)
	if err != nil || d.F != 3 {
		t.Errorf("Coerce int->float: %v, %v", d, err)
	}
	d, err = Coerce(Float(2.5), KindString)
	if err != nil || d.S != "2.5" {
		t.Errorf("Coerce float->string: %v, %v", d, err)
	}
	d, err = Coerce(Null, KindInt)
	if err != nil || !d.IsNull() {
		t.Errorf("Coerce null: %v, %v", d, err)
	}
	if _, err = Coerce(String_("zz"), KindInt); err == nil {
		t.Error("Coerce bad string->int should fail")
	}
}

func TestParse(t *testing.T) {
	d, err := Parse("15", KindInt)
	if err != nil || d.I != 15 {
		t.Fatalf("Parse int: %v %v", d, err)
	}
	d, err = Parse("", KindInt)
	if err != nil || !d.IsNull() {
		t.Fatalf("Parse empty should be NULL: %v %v", d, err)
	}
	d, err = Parse(`\N`, KindString)
	if err != nil || !d.IsNull() {
		t.Fatalf(`Parse \N should be NULL: %v %v`, d, err)
	}
	if _, err = Parse("true-ish", KindBool); err == nil {
		t.Error("Parse bad bool should fail")
	}
}

func TestRowStringAndEqual(t *testing.T) {
	r := Row{Int(1), String_("x"), Null}
	if r.String() != "1\tx\tNULL" {
		t.Errorf("Row.String() = %q", r.String())
	}
	if !r.Equal(r.Clone()) {
		t.Error("row should equal its clone")
	}
	if r.Equal(Row{Int(1), String_("x")}) {
		t.Error("different arity rows should not be equal")
	}
}

func TestCompareRows(t *testing.T) {
	a := Row{Int(1), String_("a")}
	b := Row{Int(1), String_("b")}
	if CompareRows(a, b) != -1 || CompareRows(b, a) != 1 || CompareRows(a, a) != 0 {
		t.Error("CompareRows ordering broken")
	}
	if CompareRows(Row{Int(1)}, Row{Int(1), Int(2)}) != -1 {
		t.Error("prefix row should order first")
	}
}

func TestSchemaHelpers(t *testing.T) {
	s := Schema{{"id", KindInt}, {"Name", KindString}}
	if s.ColumnIndex("name") != 1 || s.ColumnIndex("ID") != 0 || s.ColumnIndex("zz") != -1 {
		t.Error("ColumnIndex case-insensitive lookup broken")
	}
	if got := s.String(); got != "id BIGINT, Name STRING" {
		t.Errorf("Schema.String() = %q", got)
	}
	if !reflect.DeepEqual(s.Names(), []string{"id", "Name"}) {
		t.Error("Names broken")
	}
	if !reflect.DeepEqual(s.Kinds(), []Kind{KindInt, KindString}) {
		t.Error("Kinds broken")
	}
}

func TestSchemaValidateAndCoerce(t *testing.T) {
	s := Schema{{"id", KindInt}, {"v", KindFloat}}
	if err := s.Validate(Row{Int(1), Float(2)}); err != nil {
		t.Errorf("valid row rejected: %v", err)
	}
	if err := s.Validate(Row{Int(1), Null}); err != nil {
		t.Errorf("null should validate: %v", err)
	}
	if err := s.Validate(Row{Int(1)}); err == nil {
		t.Error("short row should fail validation")
	}
	if err := s.Validate(Row{Float(1), Float(2)}); err == nil {
		t.Error("kind mismatch should fail validation")
	}
	r := Row{String_("5"), Int(2)}
	if err := s.CoerceRow(r); err != nil {
		t.Fatalf("CoerceRow: %v", err)
	}
	if r[0].K != KindInt || r[0].I != 5 || r[1].K != KindFloat || r[1].F != 2 {
		t.Errorf("CoerceRow result: %v", r)
	}
}

func randomDatum(r *rand.Rand) Datum {
	switch r.Intn(5) {
	case 0:
		return Null
	case 1:
		return Int(r.Int63() - r.Int63())
	case 2:
		return Float(r.NormFloat64() * 1e6)
	case 3:
		n := r.Intn(20)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(r.Intn(256))
		}
		return String_(string(b))
	default:
		return Bool(r.Intn(2) == 0)
	}
}

// RandomRow builds an arbitrary row; exported to quick via Generate.
type quickRow Row

func (quickRow) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(8)
	row := make(Row, n)
	for i := range row {
		row[i] = randomDatum(r)
	}
	return reflect.ValueOf(quickRow(row))
}

func TestPropertyDatumEncodingRoundtrip(t *testing.T) {
	f := func(qr quickRow) bool {
		row := Row(qr)
		enc := EncodeRow(row)
		if len(enc) != RowEncodedSize(row) {
			return false
		}
		dec, n, err := DecodeRow(enc)
		if err != nil || n != len(enc) {
			return false
		}
		return dec.Equal(row)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertySortableKeyMatchesCompare(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		a, b := randomDatum(r), randomDatum(r)
		// SortableKey guarantees order only within comparable kinds.
		comparable := a.K == b.K ||
			((a.K == KindInt || a.K == KindFloat) && (b.K == KindInt || b.K == KindFloat)) ||
			a.K == KindNull || b.K == KindNull
		if !comparable {
			continue
		}
		ka := SortableKey(nil, a)
		kb := SortableKey(nil, b)
		want := Compare(a, b)
		got := compareBytes(ka, kb)
		if (want < 0 && got >= 0) || (want > 0 && got <= 0) || (want == 0 && got != 0) {
			t.Fatalf("SortableKey order mismatch: %v vs %v: Compare=%d bytes=%d", a, b, want, got)
		}
	}
}

func compareBytes(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

func TestSortableKeySortsNumericSlice(t *testing.T) {
	vals := []Datum{Float(-100.5), Int(-3), Float(-0.5), Int(0), Float(2.25), Int(7), Float(1e12)}
	keys := make([][]byte, len(vals))
	for i, v := range vals {
		keys[i] = SortableKey(nil, v)
	}
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return compareBytes(keys[i], keys[j]) < 0 }) {
		t.Error("sortable keys of ascending numerics are not ascending")
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := DecodeDatum(nil); err == nil {
		t.Error("decode empty should fail")
	}
	if _, _, err := DecodeDatum([]byte{0x99}); err == nil {
		t.Error("decode unknown tag should fail")
	}
	if _, _, err := DecodeDatum([]byte{0x02, 1, 2}); err == nil {
		t.Error("short float should fail")
	}
	if _, _, err := DecodeDatum([]byte{0x03, 10, 'a'}); err == nil {
		t.Error("short string should fail")
	}
	if _, _, err := DecodeRow([]byte{}); err == nil {
		t.Error("decode empty row should fail")
	}
}
