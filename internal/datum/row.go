package datum

import (
	"fmt"
	"strings"
)

// Row is one tuple of datums, positionally aligned with a Schema.
type Row []Datum

// Clone returns a deep-enough copy of the row (datum contents are
// immutable, so a slice copy suffices).
func (r Row) Clone() Row {
	out := make(Row, len(r))
	copy(out, r)
	return out
}

// String renders the row tab-separated, the way Hive CLI prints rows.
func (r Row) String() string {
	parts := make([]string, len(r))
	for i, d := range r {
		parts[i] = d.String()
	}
	return strings.Join(parts, "\t")
}

// Hash combines the hashes of the row's datums.
func (r Row) Hash() uint64 {
	const prime64 = 1099511628211
	h := uint64(14695981039346656037)
	for _, d := range r {
		h ^= d.Hash()
		h *= prime64
	}
	return h
}

// Equal reports structural equality of two rows.
func (r Row) Equal(o Row) bool {
	if len(r) != len(o) {
		return false
	}
	for i := range r {
		if !Equal(r[i], o[i]) {
			return false
		}
	}
	return true
}

// CompareRows orders rows lexicographically datum by datum.
func CompareRows(a, b Row) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if c := Compare(a[i], b[i]); c != 0 {
			return c
		}
	}
	switch {
	case len(a) < len(b):
		return -1
	case len(a) > len(b):
		return 1
	default:
		return 0
	}
}

// Column describes one column of a schema.
type Column struct {
	Name string
	Kind Kind
}

// Schema is an ordered list of columns.
type Schema []Column

// ColumnIndex returns the position of the named column
// (case-insensitive, as in HiveQL) or -1.
func (s Schema) ColumnIndex(name string) int {
	for i, c := range s {
		if strings.EqualFold(c.Name, name) {
			return i
		}
	}
	return -1
}

// Names returns the column names in order.
func (s Schema) Names() []string {
	out := make([]string, len(s))
	for i, c := range s {
		out[i] = c.Name
	}
	return out
}

// Kinds returns the column kinds in order.
func (s Schema) Kinds() []Kind {
	out := make([]Kind, len(s))
	for i, c := range s {
		out[i] = c.Kind
	}
	return out
}

// Clone copies the schema.
func (s Schema) Clone() Schema {
	out := make(Schema, len(s))
	copy(out, s)
	return out
}

// String renders the schema as "name TYPE, name TYPE, ...".
func (s Schema) String() string {
	parts := make([]string, len(s))
	for i, c := range s {
		parts[i] = fmt.Sprintf("%s %s", c.Name, c.Kind)
	}
	return strings.Join(parts, ", ")
}

// Validate checks the row's arity and kinds against the schema. NULLs
// are accepted in any column.
func (s Schema) Validate(r Row) error {
	if len(r) != len(s) {
		return fmt.Errorf("datum: row arity %d does not match schema arity %d", len(r), len(s))
	}
	for i, d := range r {
		if d.K != KindNull && d.K != s[i].Kind {
			return fmt.Errorf("datum: column %s expects %s, row has %s", s[i].Name, s[i].Kind, d.K)
		}
	}
	return nil
}

// CoerceRow coerces every datum of r to the schema's kinds in place,
// returning the first conversion error.
func (s Schema) CoerceRow(r Row) error {
	if len(r) != len(s) {
		return fmt.Errorf("datum: row arity %d does not match schema arity %d", len(r), len(s))
	}
	for i := range r {
		d, err := Coerce(r[i], s[i].Kind)
		if err != nil {
			return fmt.Errorf("datum: column %s: %w", s[i].Name, err)
		}
		r[i] = d
	}
	return nil
}
