package datum

// ColumnVector holds a batch of decoded values of one column in typed
// slices — the columnar counterpart of a Row position. Storage is
// positional: every slice the active kind uses has one slot per batch
// row (including NULL rows, whose value slot is the zero value), so
// vector index i always addresses batch row i without rank queries.
//
// Vectors are reused between batches: Reset re-slices the backing
// arrays in place, so a steady-state scan performs no per-batch
// allocation once the slices have grown to the batch size.
type ColumnVector struct {
	Kind Kind
	// Nulls flags NULL rows (true = NULL). Always length Len.
	Nulls []bool
	// Exactly one of the value slices is active, selected by Kind.
	Ints   []int64
	Floats []float64
	Bools  []bool
	Strs   []string
}

// Reset prepares the vector to hold n rows of the given kind, reusing
// backing arrays. All rows start NULL with zero value slots.
func (v *ColumnVector) Reset(kind Kind, n int) {
	v.Kind = kind
	v.Nulls = resetBools(v.Nulls, n, true)
	v.Ints = v.Ints[:0]
	v.Floats = v.Floats[:0]
	v.Bools = v.Bools[:0]
	v.Strs = v.Strs[:0]
	switch kind {
	case KindInt:
		v.Ints = resetInts(v.Ints, n)
	case KindFloat:
		v.Floats = resetFloats(v.Floats, n)
	case KindBool:
		v.Bools = resetBools(v.Bools[:0], n, false)
	case KindString:
		v.Strs = resetStrs(v.Strs, n)
	}
}

func resetBools(s []bool, n int, val bool) []bool {
	if cap(s) < n {
		s = make([]bool, n)
	} else {
		s = s[:n]
	}
	for i := range s {
		s[i] = val
	}
	return s
}

func resetInts(s []int64, n int) []int64 {
	if cap(s) < n {
		return make([]int64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resetFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}

func resetStrs(s []string, n int) []string {
	if cap(s) < n {
		return make([]string, n)
	}
	s = s[:n]
	for i := range s {
		s[i] = ""
	}
	return s
}

// Fill resets the vector to n rows all holding d — the broadcast
// builder for a literal operand. A NULL d leaves every row NULL.
func (v *ColumnVector) Fill(d Datum, n int) {
	v.Reset(d.K, n)
	if d.IsNull() {
		return
	}
	for i := range v.Nulls {
		v.Nulls[i] = false
	}
	switch d.K {
	case KindInt:
		for i := range v.Ints {
			v.Ints[i] = d.I
		}
	case KindFloat:
		for i := range v.Floats {
			v.Floats[i] = d.F
		}
	case KindBool:
		for i := range v.Bools {
			v.Bools[i] = d.B
		}
	case KindString:
		for i := range v.Strs {
			v.Strs[i] = d.S
		}
	}
}

// Len returns the number of rows in the vector.
func (v *ColumnVector) Len() int { return len(v.Nulls) }

// Datum returns row i as a Datum.
func (v *ColumnVector) Datum(i int) Datum {
	if v.Nulls[i] {
		return Null
	}
	switch v.Kind {
	case KindInt:
		return Datum{K: KindInt, I: v.Ints[i]}
	case KindFloat:
		return Datum{K: KindFloat, F: v.Floats[i]}
	case KindBool:
		return Datum{K: KindBool, B: v.Bools[i]}
	case KindString:
		return Datum{K: KindString, S: v.Strs[i]}
	default:
		return Null
	}
}

// SetDatum overwrites row i with d. It accepts NULL, the vector's own
// kind, or — when the vector is all-NULL with no typed storage yet
// (an unprojected column receiving a scattered UNION READ merge) —
// any kind, adopted lazily. It returns false on a kind mismatch; the
// caller then falls back to materializing rows.
func (v *ColumnVector) SetDatum(i int, d Datum) bool {
	if d.IsNull() {
		v.Nulls[i] = true
		return true
	}
	if v.Kind == KindNull {
		// All-NULL vector (unprojected column): adopt the datum's kind
		// lazily, growing the matching value slice.
		v.Kind = d.K
		n := len(v.Nulls)
		switch d.K {
		case KindInt:
			v.Ints = resetInts(v.Ints, n)
		case KindFloat:
			v.Floats = resetFloats(v.Floats, n)
		case KindBool:
			v.Bools = resetBools(v.Bools[:0], n, false)
		case KindString:
			v.Strs = resetStrs(v.Strs, n)
		}
	}
	if d.K != v.Kind {
		return false
	}
	v.Nulls[i] = false
	switch v.Kind {
	case KindInt:
		v.Ints[i] = d.I
	case KindFloat:
		v.Floats[i] = d.F
	case KindBool:
		v.Bools[i] = d.B
	case KindString:
		v.Strs[i] = d.S
	}
	return true
}
