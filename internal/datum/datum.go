// Package datum defines the typed scalar value model shared by every
// layer of the DualTable stack: the columnar file format, the key-value
// store cells, the MapReduce shuffle, and the SQL expression evaluator.
//
// A Datum is a small tagged union. It is deliberately a flat struct
// (not an interface) so rows can be manipulated without per-value heap
// allocation, which matters in scan-heavy benchmarks.
package datum

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Kind enumerates the SQL types supported by the engine. They mirror
// the Hive types used in the paper's schemas: BIGINT, DOUBLE, STRING,
// BOOLEAN (dates are stored as STRING in Hive-0.11 fashion).
type Kind uint8

const (
	// KindNull is the type of SQL NULL. A null Datum compares ordered
	// before every non-null value, matching Hive's sort order.
	KindNull Kind = iota
	// KindInt is a 64-bit signed integer (Hive BIGINT/INT).
	KindInt
	// KindFloat is a 64-bit IEEE float (Hive DOUBLE).
	KindFloat
	// KindString is a UTF-8 string (Hive STRING).
	KindString
	// KindBool is a boolean (Hive BOOLEAN).
	KindBool
)

// String returns the SQL name of the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "BIGINT"
	case KindFloat:
		return "DOUBLE"
	case KindString:
		return "STRING"
	case KindBool:
		return "BOOLEAN"
	default:
		return fmt.Sprintf("KIND(%d)", uint8(k))
	}
}

// KindFromSQL maps a SQL type name to a Kind. It accepts the common
// Hive aliases (INT, BIGINT, SMALLINT, TINYINT → KindInt; DOUBLE,
// FLOAT, DECIMAL → KindFloat; STRING, VARCHAR, CHAR, DATE, TIMESTAMP →
// KindString; BOOLEAN → KindBool).
func KindFromSQL(name string) (Kind, error) {
	switch strings.ToUpper(strings.TrimSpace(name)) {
	case "INT", "BIGINT", "SMALLINT", "TINYINT", "INTEGER":
		return KindInt, nil
	case "DOUBLE", "FLOAT", "DECIMAL", "REAL":
		return KindFloat, nil
	case "STRING", "VARCHAR", "CHAR", "TEXT", "DATE", "TIMESTAMP":
		return KindString, nil
	case "BOOLEAN", "BOOL":
		return KindBool, nil
	default:
		return KindNull, fmt.Errorf("datum: unknown SQL type %q", name)
	}
}

// Datum is one typed scalar value. The zero value is SQL NULL.
type Datum struct {
	K Kind
	I int64
	F float64
	S string
	B bool
}

// Null is the SQL NULL value.
var Null = Datum{K: KindNull}

// Int returns an integer datum.
func Int(v int64) Datum { return Datum{K: KindInt, I: v} }

// Float returns a floating-point datum.
func Float(v float64) Datum { return Datum{K: KindFloat, F: v} }

// String_ returns a string datum. The trailing underscore avoids a
// clash with the String method required by fmt.Stringer.
func String_(v string) Datum { return Datum{K: KindString, S: v} }

// Bool returns a boolean datum.
func Bool(v bool) Datum { return Datum{K: KindBool, B: v} }

// IsNull reports whether d is SQL NULL.
func (d Datum) IsNull() bool { return d.K == KindNull }

// String renders the datum the way Hive prints query output.
func (d Datum) String() string {
	switch d.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(d.I, 10)
	case KindFloat:
		return strconv.FormatFloat(d.F, 'g', -1, 64)
	case KindString:
		return d.S
	case KindBool:
		if d.B {
			return "true"
		}
		return "false"
	default:
		return fmt.Sprintf("<bad kind %d>", d.K)
	}
}

// SQLLiteral renders the datum as a SQL literal (strings quoted).
func (d Datum) SQLLiteral() string {
	if d.K == KindString {
		return "'" + strings.ReplaceAll(d.S, "'", "''") + "'"
	}
	return d.String()
}

// AsFloat converts numeric datums to float64. Booleans convert to 0/1,
// strings are parsed when possible; NULL yields (0, false).
func (d Datum) AsFloat() (float64, bool) {
	switch d.K {
	case KindInt:
		return float64(d.I), true
	case KindFloat:
		return d.F, true
	case KindBool:
		if d.B {
			return 1, true
		}
		return 0, true
	case KindString:
		f, err := strconv.ParseFloat(strings.TrimSpace(d.S), 64)
		return f, err == nil
	default:
		return 0, false
	}
}

// AsInt converts numeric datums to int64 with float truncation.
func (d Datum) AsInt() (int64, bool) {
	switch d.K {
	case KindInt:
		return d.I, true
	case KindFloat:
		return int64(d.F), true
	case KindBool:
		if d.B {
			return 1, true
		}
		return 0, true
	case KindString:
		i, err := strconv.ParseInt(strings.TrimSpace(d.S), 10, 64)
		if err == nil {
			return i, true
		}
		f, ferr := strconv.ParseFloat(strings.TrimSpace(d.S), 64)
		return int64(f), ferr == nil
	default:
		return 0, false
	}
}

// Truthy reports whether the datum is a true boolean. Per SQL
// three-valued logic NULL is not true.
func (d Datum) Truthy() bool { return d.K == KindBool && d.B }

// Compare orders two datums: NULL < everything; numerics compare by
// value across int/float; strings and bools compare within kind.
// Cross-kind non-numeric comparisons order by kind tag, which gives a
// total order (needed for sorting shuffle keys deterministically).
func Compare(a, b Datum) int {
	if a.K == KindNull || b.K == KindNull {
		switch {
		case a.K == KindNull && b.K == KindNull:
			return 0
		case a.K == KindNull:
			return -1
		default:
			return 1
		}
	}
	an := a.K == KindInt || a.K == KindFloat
	bn := b.K == KindInt || b.K == KindFloat
	if an && bn {
		if a.K == KindInt && b.K == KindInt {
			switch {
			case a.I < b.I:
				return -1
			case a.I > b.I:
				return 1
			default:
				return 0
			}
		}
		af, _ := a.AsFloat()
		bf, _ := b.AsFloat()
		switch {
		case af < bf:
			return -1
		case af > bf:
			return 1
		default:
			return 0
		}
	}
	if a.K != b.K {
		if a.K < b.K {
			return -1
		}
		return 1
	}
	switch a.K {
	case KindString:
		return strings.Compare(a.S, b.S)
	case KindBool:
		switch {
		case a.B == b.B:
			return 0
		case !a.B:
			return -1
		default:
			return 1
		}
	}
	return 0
}

// Equal reports value equality under Compare semantics, except that
// NULL never equals NULL (SQL semantics are handled by the evaluator;
// Equal here is structural and does treat NULL==NULL as true so maps
// and tests can use it).
func Equal(a, b Datum) bool { return Compare(a, b) == 0 }

// Hash returns a 64-bit hash of the datum, consistent with Compare
// equality for same-kind values and for int/float values that compare
// equal (both hash through the float64 bit pattern).
func (d Datum) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(b byte) {
		h ^= uint64(b)
		h *= prime64
	}
	switch d.K {
	case KindNull:
		mix(0)
	case KindInt, KindFloat:
		f, _ := d.AsFloat()
		// Normalize -0.0 to 0.0 so equal values hash equal.
		if f == 0 {
			f = 0
		}
		bits := math.Float64bits(f)
		mix(1)
		for i := 0; i < 8; i++ {
			mix(byte(bits >> (8 * i)))
		}
	case KindString:
		mix(2)
		for i := 0; i < len(d.S); i++ {
			mix(d.S[i])
		}
	case KindBool:
		mix(3)
		if d.B {
			mix(1)
		} else {
			mix(0)
		}
	}
	return h
}

// Coerce converts d to the target kind, applying SQL-style implicit
// casts. NULL coerces to NULL of any kind. Returns an error when the
// conversion is not possible (e.g. non-numeric string to BIGINT).
func Coerce(d Datum, to Kind) (Datum, error) {
	if d.K == KindNull || d.K == to {
		return d, nil
	}
	switch to {
	case KindInt:
		if v, ok := d.AsInt(); ok {
			return Int(v), nil
		}
	case KindFloat:
		if v, ok := d.AsFloat(); ok {
			return Float(v), nil
		}
	case KindString:
		return String_(d.String()), nil
	case KindBool:
		switch d.K {
		case KindInt:
			return Bool(d.I != 0), nil
		case KindFloat:
			return Bool(d.F != 0), nil
		case KindString:
			switch strings.ToLower(d.S) {
			case "true", "1":
				return Bool(true), nil
			case "false", "0":
				return Bool(false), nil
			}
		}
	}
	return Null, fmt.Errorf("datum: cannot coerce %s %q to %s", d.K, d.String(), to)
}

// Parse parses the textual form s into a datum of kind k. Empty
// strings and the literal \N parse as NULL (Hive text convention).
func Parse(s string, k Kind) (Datum, error) {
	if s == "" || s == `\N` {
		return Null, nil
	}
	switch k {
	case KindInt:
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return Null, fmt.Errorf("datum: parse %q as BIGINT: %w", s, err)
		}
		return Int(v), nil
	case KindFloat:
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return Null, fmt.Errorf("datum: parse %q as DOUBLE: %w", s, err)
		}
		return Float(v), nil
	case KindString:
		return String_(s), nil
	case KindBool:
		switch strings.ToLower(s) {
		case "true", "1":
			return Bool(true), nil
		case "false", "0":
			return Bool(false), nil
		}
		return Null, fmt.Errorf("datum: parse %q as BOOLEAN", s)
	default:
		return Null, fmt.Errorf("datum: parse into kind %v", k)
	}
}
