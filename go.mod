module dualtable

go 1.24
