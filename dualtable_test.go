package dualtable_test

import (
	"fmt"
	"strings"
	"testing"

	"dualtable"
	"dualtable/internal/sim"
)

func openDB(t *testing.T) *dualtable.DB {
	t.Helper()
	cfg := dualtable.DefaultConfig()
	cfg.Parallelism = 4
	db, err := dualtable.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestOpenDefaults(t *testing.T) {
	db := openDB(t)
	if db.Engine == nil || db.FS == nil || db.KV == nil || db.MR == nil || db.Handler == nil {
		t.Fatal("incomplete DB")
	}
	if db.MR.Params.Nodes != 26 {
		t.Errorf("default cluster nodes = %d", db.MR.Params.Nodes)
	}
}

func TestOpenTPCHCluster(t *testing.T) {
	cfg := dualtable.DefaultConfig()
	cfg.Cluster = sim.TPCHCluster()
	db, err := dualtable.Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if db.MR.Params.Nodes != 10 {
		t.Errorf("tpch cluster nodes = %d", db.MR.Params.Nodes)
	}
}

func TestEndToEndLifecycle(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (id BIGINT, v DOUBLE) STORED AS DUALTABLE")
	db.MustExec("INSERT INTO t VALUES (1, 10.0), (2, 20.0), (3, 30.0)")
	rs := db.MustExec("UPDATE t SET v = 99.0 WHERE id = 2")
	if rs.Plan != "EDIT" && rs.Plan != "OVERWRITE" {
		t.Errorf("plan = %q", rs.Plan)
	}
	rs = db.MustExec("SELECT v FROM t WHERE id = 2")
	if rs.Rows[0][0].F != 99 {
		t.Errorf("updated value = %v", rs.Rows[0])
	}
	db.MustExec("DELETE FROM t WHERE id = 1")
	db.MustExec("COMPACT TABLE t")
	rs = db.MustExec("SELECT COUNT(*) FROM t")
	if rs.Rows[0][0].I != 2 {
		t.Errorf("final count = %v", rs.Rows[0])
	}
	if len(db.PlanLog()) < 2 {
		t.Errorf("plan log = %v", db.PlanLog())
	}
}

func TestACIDStorageAvailable(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE a (id BIGINT) STORED AS ACID")
	db.MustExec("INSERT INTO a VALUES (1), (2)")
	rs := db.MustExec("UPDATE a SET id = 9 WHERE id = 2")
	if rs.Plan != "DELTA" {
		t.Errorf("acid plan = %q", rs.Plan)
	}
	rs = db.MustExec("SELECT COUNT(*) FROM a WHERE id = 9")
	if rs.Rows[0][0].I != 1 {
		t.Errorf("acid update lost: %v", rs.Rows[0])
	}
}

func TestForcePlanAndHints(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE t (id BIGINT, v DOUBLE) STORED AS DUALTABLE")
	db.MustExec("INSERT INTO t VALUES (1, 1.0), (2, 2.0)")
	db.SetForcePlan("OVERWRITE")
	rs := db.MustExec("UPDATE t SET v = 0.0 WHERE id = 1")
	if rs.Plan != "OVERWRITE" {
		t.Errorf("forced plan = %q", rs.Plan)
	}
	db.SetForcePlan("EDIT")
	rs = db.MustExec("UPDATE t SET v = 5.0 WHERE id = 1")
	if rs.Plan != "EDIT" {
		t.Errorf("forced plan = %q", rs.Plan)
	}
	db.SetForcePlan("")
	if err := db.SetRatioHint("UPDATE t SET v = 1.0 WHERE id = 2", 0.5); err != nil {
		t.Fatal(err)
	}
	if err := db.SetRatioHint("SELECT 1", 0.5); err == nil {
		t.Error("hint on SELECT should fail")
	}
	db.SetFollowingReads(3)
}

func TestExecScriptAndErrors(t *testing.T) {
	db := openDB(t)
	rs, err := db.ExecScript(`
		CREATE TABLE s (a BIGINT);
		INSERT INTO s VALUES (1), (2);
		SELECT COUNT(*) FROM s;
	`)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rows[0][0].I != 2 {
		t.Errorf("script result = %v", rs.Rows[0])
	}
	if _, err := db.Exec("SELEC bogus"); err == nil {
		t.Error("bad SQL should fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustExec should panic on error")
		}
	}()
	db.MustExec("SELECT * FROM nonexistent_table")
}

func TestCostModelExposed(t *testing.T) {
	db := openDB(t)
	if db.CostModel() == nil {
		t.Fatal("nil cost model")
	}
	if !strings.Contains(db.MR.Params.Name, "grid") {
		t.Errorf("params name = %q", db.MR.Params.Name)
	}
}

// Example demonstrates the end-to-end API: create a DualTable, load,
// update through the cost model, read through UNION READ, compact.
func Example() {
	db, err := dualtable.Open(dualtable.DefaultConfig())
	if err != nil {
		panic(err)
	}
	db.MustExec(`CREATE TABLE readings (meter BIGINT, kwh DOUBLE) STORED AS DUALTABLE`)
	db.MustExec(`INSERT INTO readings VALUES (1, 10.5), (2, 20.0), (3, 0.0)`)
	db.MustExec(`UPDATE readings SET kwh = 7.25 WHERE meter = 3`)
	db.MustExec(`DELETE FROM readings WHERE meter = 2`)
	rs := db.MustExec(`SELECT meter, kwh FROM readings ORDER BY meter`)
	for _, row := range rs.Rows {
		fmt.Println(row)
	}
	db.MustExec(`COMPACT TABLE readings`)
	fmt.Println("rows:", len(db.MustExec(`SELECT * FROM readings`).Rows))
	// Output:
	// 1	10.5
	// 3	7.25
	// rows: 2
}
