package dualtable_test

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"dualtable"
	"dualtable/internal/datum"
)

// TestSessionConcurrentForcePlan runs two sessions with conflicting
// SET dualtable.force.plan values concurrently (under -race) and
// checks each session's PlanLog records exactly its own choice.
func TestSessionConcurrentForcePlan(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE ta (id BIGINT, v DOUBLE) STORED AS DUALTABLE")
	db.MustExec("CREATE TABLE tb (id BIGINT, v DOUBLE) STORED AS DUALTABLE")
	db.MustExec("INSERT INTO ta VALUES (1, 1.0), (2, 2.0), (3, 3.0)")
	db.MustExec("INSERT INTO tb VALUES (1, 1.0), (2, 2.0), (3, 3.0)")

	sessEdit := db.Session()
	sessOver := db.Session()
	if _, err := sessEdit.Exec("SET dualtable.force.plan = EDIT"); err != nil {
		t.Fatal(err)
	}
	if _, err := sessOver.Exec("SET dualtable.force.plan = OVERWRITE"); err != nil {
		t.Fatal(err)
	}

	const rounds = 6
	var wg sync.WaitGroup
	errs := make([]error, 2)
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			rs, err := sessEdit.Exec(fmt.Sprintf("UPDATE ta SET v = %d.0 WHERE id = 2", i))
			if err != nil {
				errs[0] = err
				return
			}
			if rs.Plan != "EDIT" {
				errs[0] = fmt.Errorf("session A round %d got plan %q, want EDIT", i, rs.Plan)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			rs, err := sessOver.Exec(fmt.Sprintf("UPDATE tb SET v = %d.0 WHERE id = 2", i))
			if err != nil {
				errs[1] = err
				return
			}
			if rs.Plan != "OVERWRITE" {
				errs[1] = fmt.Errorf("session B round %d got plan %q, want OVERWRITE", i, rs.Plan)
				return
			}
		}
	}()
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	logA, logB := sessEdit.PlanLog(), sessOver.PlanLog()
	if len(logA) != rounds || len(logB) != rounds {
		t.Fatalf("plan log lengths = %d, %d; want %d each", len(logA), len(logB), rounds)
	}
	for _, d := range logA {
		if d.Plan.String() != "EDIT" || d.Table != "ta" {
			t.Errorf("session A logged %v on %s", d.Plan, d.Table)
		}
	}
	for _, d := range logB {
		if d.Plan.String() != "OVERWRITE" || d.Table != "tb" {
			t.Errorf("session B logged %v on %s", d.Plan, d.Table)
		}
	}
	// The handler-global log saw both.
	if got := len(db.PlanLog()); got != 2*rounds {
		t.Errorf("global plan log = %d entries, want %d", got, 2*rounds)
	}
}

// TestSessionConcurrentEditsSameTable exercises two sessions writing
// the same DualTable concurrently with the EDIT plan (race detector
// coverage for the attached-table path).
func TestSessionConcurrentEditsSameTable(t *testing.T) {
	db := openDB(t)
	db.MustExec("CREATE TABLE shared (id BIGINT, v DOUBLE) STORED AS DUALTABLE")
	db.MustExec("INSERT INTO shared VALUES (1, 1.0), (2, 2.0), (3, 3.0), (4, 4.0)")

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for g := 0; g < 2; g++ {
		g := g
		sess := db.Session()
		sess.SetForcePlan("EDIT")
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				if _, err := sess.Exec(fmt.Sprintf("UPDATE shared SET v = %d.%d WHERE id = %d", i, g, g+1)); err != nil {
					errs[g] = err
					return
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestSessionSetListAndUnset(t *testing.T) {
	db := openDB(t)
	sess := db.Session()
	sess.MustExec("SET dualtable.following.reads = 3")
	sess.MustExec("SET my.custom.key = 'hello world'")
	rs := sess.MustExec("SET")
	if len(rs.Rows) != 2 {
		t.Fatalf("SET listing = %v", rs.Rows)
	}
	got := map[string]string{}
	for _, r := range rs.Rows {
		got[r[0].S] = r[1].S
	}
	if got["dualtable.following.reads"] != "3" || got["my.custom.key"] != "hello world" {
		t.Errorf("settings = %v", got)
	}
	sess.Unset("my.custom.key")
	if rs := sess.MustExec("SET"); len(rs.Rows) != 1 {
		t.Errorf("after Unset: %v", rs.Rows)
	}
	// SET without a session (raw engine) fails.
	if _, err := db.Engine.Execute("SET a.b = 1"); err == nil {
		t.Error("engine-level SET should require a session")
	}
}

// TestContextCanceledBeforeExec checks that an already-canceled
// context aborts statements before any MapReduce work happens.
func TestContextCanceledBeforeExec(t *testing.T) {
	db := openDB(t)
	sess := db.Session()
	sess.MustExec("CREATE TABLE t (id BIGINT, v DOUBLE) STORED AS DUALTABLE")
	sess.MustExec("INSERT INTO t VALUES (1, 1.0), (2, 2.0)")

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.ExecContext(ctx, "SELECT * FROM t"); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled SELECT err = %v, want context.Canceled", err)
	}
	if _, err := sess.ExecContext(ctx, "UPDATE t SET v = 0.0"); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled UPDATE err = %v, want context.Canceled", err)
	}
	if _, err := sess.QueryContext(ctx, "SELECT * FROM t"); !errors.Is(err, context.Canceled) {
		t.Errorf("canceled Query err = %v, want context.Canceled", err)
	}
	// The table is intact.
	rs := sess.MustExec("SELECT v FROM t WHERE id = 1")
	if rs.Rows[0][0].F != 1.0 {
		t.Errorf("update ran despite canceled context: %v", rs.Rows)
	}
}

// TestQueryContextCancelMidScan cancels a streaming query after the
// first row and checks the MapReduce job aborts with context.Canceled
// instead of completing.
func TestQueryContextCancelMidScan(t *testing.T) {
	db := openDB(t)
	sess := db.Session()
	sess.MustExec("CREATE TABLE big (id BIGINT, v DOUBLE) STORED AS DUALTABLE")
	rows := make([]datum.Row, 5000)
	for i := range rows {
		rows[i] = datum.Row{datum.Int(int64(i)), datum.Float(float64(i))}
	}
	if _, err := db.Engine.BulkLoad("big", rows); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	rs, err := sess.QueryContext(ctx, "SELECT id, v FROM big")
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Next() {
		t.Fatalf("no first row: %v", rs.Err())
	}
	cancel()
	// Drain; the producer must terminate with the cancellation error.
	n := 1
	for rs.Next() {
		n++
	}
	if !errors.Is(rs.Err(), context.Canceled) {
		t.Errorf("after cancel, Err = %v (read %d rows), want context.Canceled", rs.Err(), n)
	}
	if n >= len(rows) {
		t.Errorf("scan completed (%d rows) despite cancellation", n)
	}
	rs.Close()
}

func TestPreparedStatementRebinding(t *testing.T) {
	db := openDB(t)
	sess := db.Session()
	sess.MustExec("CREATE TABLE p (id BIGINT, name STRING) STORED AS DUALTABLE")

	ins, err := sess.Prepare("INSERT INTO p VALUES (?, ?)")
	if err != nil {
		t.Fatal(err)
	}
	if ins.NumParams() != 2 {
		t.Fatalf("NumParams = %d", ins.NumParams())
	}
	for i, name := range []string{"alpha", "beta", "gamma"} {
		if _, err := ins.Exec(int64(i+1), name); err != nil {
			t.Fatal(err)
		}
	}
	// Wrong arity fails cleanly.
	if _, err := ins.Exec(int64(9)); err == nil {
		t.Error("arity mismatch should fail")
	}

	sel, err := sess.Prepare("SELECT name FROM p WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range []string{"alpha", "beta", "gamma"} {
		rows, err := sel.Query(int64(i + 1))
		if err != nil {
			t.Fatal(err)
		}
		var got string
		if !rows.Next() {
			t.Fatalf("id %d: no row (%v)", i+1, rows.Err())
		}
		if err := rows.Scan(&got); err != nil {
			t.Fatal(err)
		}
		rows.Close()
		if got != want {
			t.Errorf("id %d = %q, want %q", i+1, got, want)
		}
	}

	// Prepared UPDATE rebinding through the DualTable DML path.
	upd, err := sess.Prepare("UPDATE p SET name = ? WHERE id = ?")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := upd.Exec("delta", int64(2)); err != nil {
		t.Fatal(err)
	}
	rs := sess.MustExec("SELECT name FROM p WHERE id = 2")
	if rs.Rows[0][0].S != "delta" {
		t.Errorf("rebound update result = %v", rs.Rows)
	}

	// The plan cache returns the same compiled statement without
	// reparsing.
	p1, _ := db.Engine.Prepare("SELECT name FROM p WHERE id = ?")
	p2, _ := db.Engine.Prepare("SELECT name FROM p WHERE id = ?")
	if p1 != p2 {
		t.Error("plan cache did not deduplicate identical SQL")
	}
	if _, hits, _ := db.Engine.PlanCacheStats(); hits == 0 {
		t.Error("plan cache recorded no hits")
	}
}

func TestRowsDrainVsEarlyClose(t *testing.T) {
	db := openDB(t)
	sess := db.Session()
	sess.MustExec("CREATE TABLE r (id BIGINT) STORED AS DUALTABLE")
	rows := make([]datum.Row, 1000)
	for i := range rows {
		rows[i] = datum.Row{datum.Int(int64(i))}
	}
	if _, err := db.Engine.BulkLoad("r", rows); err != nil {
		t.Fatal(err)
	}

	// Full drain sees every row exactly once.
	rs, err := sess.Query("SELECT id FROM r")
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int64]bool{}
	for rs.Next() {
		var id int64
		if err := rs.Scan(&id); err != nil {
			t.Fatal(err)
		}
		if seen[id] {
			t.Fatalf("duplicate id %d", id)
		}
		seen[id] = true
	}
	if rs.Err() != nil {
		t.Fatal(rs.Err())
	}
	if len(seen) != len(rows) {
		t.Fatalf("drained %d rows, want %d", len(seen), len(rows))
	}
	if rs.SimSeconds() <= 0 {
		t.Error("no simulated time recorded after drain")
	}
	rs.Close()

	// Early close after a few rows is clean (no error) and aborts the
	// job.
	rs, err = sess.Query("SELECT id FROM r")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3 && rs.Next(); i++ {
	}
	if err := rs.Close(); err != nil {
		t.Fatal(err)
	}
	if rs.Err() != nil {
		t.Errorf("early Close set Err = %v", rs.Err())
	}
	if rs.Next() {
		t.Error("Next after Close should be false")
	}

	// LIMIT streams and stops early without error.
	rs, err = sess.Query("SELECT id FROM r LIMIT 5")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for rs.Next() {
		n++
	}
	if rs.Err() != nil {
		t.Fatal(rs.Err())
	}
	if n != 5 {
		t.Errorf("LIMIT 5 returned %d rows", n)
	}
	rs.Close()

	// LIMIT 0 returns immediately without scanning.
	rs, err = sess.Query("SELECT id FROM r LIMIT 0")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Next() {
		t.Error("LIMIT 0 returned a row")
	}
	if rs.Err() != nil {
		t.Fatal(rs.Err())
	}
	rs.Close()

	// Non-streamable queries (aggregate + ORDER BY) still work through
	// the same iterator.
	rs, err = sess.Query("SELECT COUNT(*) FROM r")
	if err != nil {
		t.Fatal(err)
	}
	if !rs.Next() {
		t.Fatalf("no aggregate row: %v", rs.Err())
	}
	var cnt int64
	if err := rs.Scan(&cnt); err != nil {
		t.Fatal(err)
	}
	if cnt != int64(len(rows)) {
		t.Errorf("COUNT(*) = %d", cnt)
	}
	rs.Close()
}

// TestStreamLimitAcrossSplits checks LIMIT is exact when several map
// tasks race to deliver rows (one master file per INSERT → one split
// each).
func TestStreamLimitAcrossSplits(t *testing.T) {
	db := openDB(t)
	sess := db.Session()
	sess.MustExec("CREATE TABLE ms (id BIGINT) STORED AS DUALTABLE")
	for i := 0; i < 8; i++ {
		sess.MustExec(fmt.Sprintf("INSERT INTO ms VALUES (%d), (%d)", 2*i, 2*i+1))
	}
	for round := 0; round < 5; round++ {
		rs, err := sess.Query("SELECT id FROM ms LIMIT 3")
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for rs.Next() {
			n++
		}
		if rs.Err() != nil {
			t.Fatal(rs.Err())
		}
		rs.Close()
		if n != 3 {
			t.Fatalf("round %d: LIMIT 3 delivered %d rows", round, n)
		}
	}
}

func TestSessionFollowingReadsAndRatioHint(t *testing.T) {
	db := openDB(t)
	sess := db.Session()
	sess.MustExec("CREATE TABLE h (id BIGINT, v DOUBLE) STORED AS DUALTABLE")
	sess.MustExec("INSERT INTO h VALUES (1, 1.0), (2, 2.0)")
	sess.SetFollowingReads(4)
	if err := sess.SetRatioHint("UPDATE h SET v = 0.0 WHERE id = 1", 0.7); err != nil {
		t.Fatal(err)
	}
	if err := sess.SetRatioHint("SELECT 1", 0.5); err == nil {
		t.Error("ratio hint on SELECT should fail")
	}
	if _, err := sess.Exec("UPDATE h SET v = 9.0 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	log := sess.PlanLog()
	if len(log) != 1 {
		t.Fatalf("plan log = %v", log)
	}
	if log[0].RatioSrc != "session-hint" || log[0].Ratio != 0.7 {
		t.Errorf("decision = %+v, want session-hint ratio 0.7", log[0])
	}
	// Another session is unaffected by the hint.
	other := db.Session()
	if _, err := other.Exec("UPDATE h SET v = 8.0 WHERE id = 1"); err != nil {
		t.Fatal(err)
	}
	if l := other.PlanLog(); len(l) != 1 || l[0].RatioSrc == "session-hint" {
		t.Errorf("other session decision = %+v", l)
	}
}

// TestPlanCacheNormalizedHits checks that statements differing only in
// literal constants share one cached template: after the first
// variant, later variants are normalized hits, and results stay
// correct for each constant.
func TestPlanCacheNormalizedHits(t *testing.T) {
	db := openDB(t)
	sess := db.Session()
	sess.MustExec("CREATE TABLE nrm (id BIGINT, v DOUBLE) STORED AS DUALTABLE")
	sess.MustExec("INSERT INTO nrm VALUES (1, 1.5), (2, 2.5), (3, 3.5)")

	for id := 1; id <= 3; id++ {
		rs := sess.MustExec(fmt.Sprintf("SELECT v FROM nrm WHERE id = %d", id))
		if len(rs.Rows) != 1 || rs.Rows[0][0].F != float64(id)+0.5 {
			t.Fatalf("id %d: rows = %v", id, rs.Rows)
		}
	}
	stats := sess.PlanCacheStats()
	// Variant 1 misses (and caches the template); variants 2 and 3 hit
	// via normalization.
	if got := stats.NormalizedHits.Load(); got < 2 {
		t.Errorf("normalized hits = %d, want >= 2", got)
	}
	if stats.HitRate() == 0 {
		t.Error("session hit rate is zero")
	}
	if n := db.Engine.PlanCacheNormalizedHits(); n < 2 {
		t.Errorf("engine normalized hits = %d, want >= 2", n)
	}

	// Repeating an exact text is an exact hit, not a normalized one.
	before := stats.NormalizedHits.Load()
	sess.MustExec("SELECT v FROM nrm WHERE id = 2")
	if stats.NormalizedHits.Load() != before {
		t.Error("exact repeat should not count as a normalized hit")
	}
	if stats.Hits.Load() < before+1 {
		t.Error("exact repeat should count as a hit")
	}
}

// TestPreparedLimitParameter covers the parameterized LIMIT path end
// to end: LIMIT ? binds per execution, and two texts differing only
// in the LIMIT count share one normalized plan template.
func TestPreparedLimitParameter(t *testing.T) {
	db := openDB(t)
	sess := db.Session()
	sess.MustExec("CREATE TABLE lim (id BIGINT, v DOUBLE) STORED AS DUALTABLE")
	var sb strings.Builder
	sb.WriteString("INSERT INTO lim VALUES ")
	for i := 0; i < 50; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, %d.5)", i, i)
	}
	sess.MustExec(sb.String())

	sel, err := sess.Prepare("SELECT id FROM lim ORDER BY id LIMIT ?")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []int{1, 7, 50, 0} {
		rows, err := sel.Query(int64(want))
		if err != nil {
			t.Fatal(err)
		}
		n := 0
		for rows.Next() {
			n++
		}
		rows.Close()
		if n != want {
			t.Fatalf("LIMIT %d returned %d rows", want, n)
		}
	}
	if _, err := sel.Query(int64(-2)); err == nil {
		t.Error("negative LIMIT binding should fail")
	}

	// Literal-LIMIT variants normalize onto one cached template.
	stats := sess.PlanCacheStats()
	before := stats.NormalizedHits.Load()
	sess.MustExec("SELECT id FROM lim WHERE id = 3 LIMIT 4")
	sess.MustExec("SELECT id FROM lim WHERE id = 3 LIMIT 9")
	if got := stats.NormalizedHits.Load() - before; got < 1 {
		t.Fatalf("LIMIT variants should share a normalized template (normalized hits %d)", got)
	}
}

// TestSessionCloseReleasesResources is the lifecycle regression test:
// Close is idempotent, live streaming Rows are closed (dropping their
// snapshot pins so reclamation can proceed), live Submit jobs are
// awaited, and every subsequent operation fails with ErrSessionClosed.
func TestSessionCloseReleasesResources(t *testing.T) {
	db := openDB(t)
	s := db.Session()
	s.MustExec("CREATE TABLE sc (id BIGINT, v DOUBLE) STORED AS DUALTABLE")
	vals := make([]string, 200)
	for i := range vals {
		vals[i] = fmt.Sprintf("(%d, %d.5)", i, i)
	}
	s.MustExec("INSERT INTO sc VALUES " + strings.Join(vals, ", "))
	// Fold the freshly inserted rows into master files so the scan has
	// files to pin.
	s.MustExec("COMPACT TABLE sc")

	// Baseline: the manifest chain holds a standing pin per current
	// master file even with no scans live.
	desc, err := db.Engine.MS.Get("sc")
	if err != nil {
		t.Fatal(err)
	}
	files := listTree(t, db, desc.Location)
	base := 0
	for _, p := range files {
		base += db.FS.Pins(p)
	}

	// A mid-flight stream holds extra snapshot pins on the master
	// files (the row count exceeds the stream buffer, so the producer
	// is still scanning — and still pinning — while we hold the
	// iterator).
	rows, err := s.Query("SELECT id, v FROM sc")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("empty stream: %v", rows.Err())
	}
	pinned := 0
	for _, p := range files {
		pinned += db.FS.Pins(p)
	}
	if pinned <= base {
		t.Fatalf("live stream holds no extra file pins (%d, baseline %d)", pinned, base)
	}

	// A live async job; Close must await its goroutine.
	job, err := s.Submit("SELECT COUNT(*) FROM sc")
	if err != nil {
		t.Fatal(err)
	}

	if err := s.Close(); err != nil {
		t.Fatalf("first Close: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close not idempotent: %v", err)
	}

	// The job goroutine has fully wound down (done channel closed).
	select {
	case <-job.Done():
	default:
		t.Fatal("job still running after Close")
	}

	// The stream was closed and its snapshot pins dropped back to the
	// baseline.
	for rows.Next() {
		t.Fatal("closed session's Rows still yields rows")
	}
	after := 0
	for _, p := range files {
		after += db.FS.Pins(p)
	}
	if after != base {
		t.Fatalf("pins after Close = %d, want baseline %d", after, base)
	}

	// Everything on the closed session fails with the typed sentinel.
	if _, err := s.Exec("SELECT 1"); !errors.Is(err, dualtable.ErrSessionClosed) {
		t.Fatalf("Exec after Close = %v, want ErrSessionClosed", err)
	}
	if _, err := s.Query("SELECT id FROM sc"); !errors.Is(err, dualtable.ErrSessionClosed) {
		t.Fatalf("Query after Close = %v, want ErrSessionClosed", err)
	}
	if _, err := s.Prepare("SELECT id FROM sc"); !errors.Is(err, dualtable.ErrSessionClosed) {
		t.Fatalf("Prepare after Close = %v, want ErrSessionClosed", err)
	}
	if _, err := s.Submit("SELECT 1"); !errors.Is(err, dualtable.ErrSessionClosed) {
		t.Fatalf("Submit after Close = %v, want ErrSessionClosed", err)
	}

	// No pins linger: a DROP from a fresh session reclaims the table
	// immediately instead of deferring behind leaked snapshots.
	other := db.Session()
	other.MustExec("DROP TABLE sc")
	if db.FS.Exists(desc.Location) {
		t.Fatalf("%s not reclaimed after DROP — leaked pins", desc.Location)
	}
}

// TestSessionCloseAbortsInFlightStatement checks Close cancels a
// statement blocked inside the engine (via the session's close
// context) rather than waiting for it.
func TestSessionCloseAbortsInFlightStatement(t *testing.T) {
	db := openDB(t)
	s := db.Session()
	s.MustExec("CREATE TABLE ab (id BIGINT, v DOUBLE) STORED AS DUALTABLE")
	for i := 0; i < 50; i++ {
		s.MustExec(fmt.Sprintf("INSERT INTO ab VALUES (%d, %d.0)", i, i))
	}
	rows, err := s.Query("SELECT id, v FROM ab")
	if err != nil {
		t.Fatal(err)
	}
	if !rows.Next() {
		t.Fatalf("empty stream: %v", rows.Err())
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		s.Close()
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close hung on a live stream")
	}
	for rows.Next() {
	}
}

// listTree returns every regular file under dir, recursively.
func listTree(t *testing.T, db *dualtable.DB, dir string) []string {
	t.Helper()
	infos, err := db.FS.List(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, fi := range infos {
		if fi.IsDir {
			out = append(out, listTree(t, db, fi.Path)...)
		} else {
			out = append(out, fi.Path)
		}
	}
	return out
}
