package dualtable

import (
	"context"
	"fmt"
	"sync/atomic"
)

// JobState describes where an asynchronously submitted statement is
// in its lifecycle.
type JobState int32

// Job lifecycle states.
const (
	// JobRunning: the statement is executing.
	JobRunning JobState = iota
	// JobSucceeded: the statement finished; Result holds its result.
	JobSucceeded
	// JobFailed: the statement returned an error other than
	// cancellation.
	JobFailed
	// JobCanceled: the job was canceled (Cancel or context).
	JobCanceled
)

// String names the state.
func (s JobState) String() string {
	switch s {
	case JobRunning:
		return "RUNNING"
	case JobSucceeded:
		return "SUCCEEDED"
	case JobFailed:
		return "FAILED"
	case JobCanceled:
		return "CANCELED"
	default:
		return fmt.Sprintf("JobState(%d)", int32(s))
	}
}

// JobStatus is a point-in-time snapshot of an async job.
type JobStatus struct {
	State JobState
	// SQL is the submitted statement text.
	SQL string
	// Err is the terminal error (nil unless FAILED or CANCELED).
	Err error
}

// Job is the handle of a statement submitted with Session.Submit: the
// statement runs on its own goroutine under the session's settings
// while the caller keeps using the session — the intended way to kick
// off a long COMPACT and keep serving snapshot reads from the same
// session. Poll never blocks, Wait blocks until completion, Cancel
// aborts the statement between MapReduce records (a canceled COMPACT
// discards its staged files and leaves the table unchanged; nothing
// was published).
type Job struct {
	sql    string
	cancel context.CancelFunc
	done   chan struct{}

	state atomic.Int32
	// rs/err are written once before done closes.
	rs  *ResultSet
	err error
}

// Submit starts the statement asynchronously and returns its handle.
// Errors detected at execution time (including parse errors) surface
// through Poll/Wait, not here.
func (s *Session) Submit(sql string) (*Job, error) {
	return s.SubmitContext(context.Background(), sql)
}

// SubmitContext is Submit under a parent context: canceling the
// parent cancels the job as Job.Cancel does. The job is tracked by
// its session: Session.Close cancels and awaits it. A closed session
// returns ErrSessionClosed.
func (s *Session) SubmitContext(ctx context.Context, sql string) (*Job, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	octx, release, err := s.begin(ctx)
	if err != nil {
		return nil, err
	}
	jctx, cancel := context.WithCancel(octx)
	j := &Job{sql: sql, cancel: cancel, done: make(chan struct{})}
	j.state.Store(int32(JobRunning))
	s.trackJob(j)
	go func() {
		defer close(j.done)
		defer release()
		defer cancel()
		rs, err := s.db.Engine.ExecuteCtx(s.ec(jctx), sql)
		j.rs, j.err = rs, err
		switch {
		case err == nil:
			j.state.Store(int32(JobSucceeded))
		case jctx.Err() != nil:
			j.state.Store(int32(JobCanceled))
		default:
			j.state.Store(int32(JobFailed))
		}
		s.untrackJob(j)
	}()
	return j, nil
}

// trackJob registers a live job with its session.
func (s *Session) trackJob(j *Job) {
	s.mu.Lock()
	if s.jobs == nil {
		s.jobs = map[*Job]struct{}{}
	}
	s.jobs[j] = struct{}{}
	s.mu.Unlock()
}

// untrackJob drops a finished job from the session's live set.
func (s *Session) untrackJob(j *Job) {
	s.mu.Lock()
	delete(s.jobs, j)
	s.mu.Unlock()
}

// Poll returns the job's current status without blocking.
func (j *Job) Poll() JobStatus {
	st := JobStatus{State: JobState(j.state.Load()), SQL: j.sql}
	select {
	case <-j.done:
		st.Err = j.err
	default:
	}
	return st
}

// Done returns a channel closed when the job reaches a terminal
// state (select-friendly companion to Wait).
func (j *Job) Done() <-chan struct{} { return j.done }

// Wait blocks until the job finishes and returns its result.
func (j *Job) Wait() (*ResultSet, error) {
	<-j.done
	return j.rs, j.err
}

// WaitContext is Wait bounded by ctx: it returns ctx.Err() if the
// context expires first (the job keeps running; use Cancel to stop
// it).
func (j *Job) WaitContext(ctx context.Context) (*ResultSet, error) {
	select {
	case <-j.done:
		return j.rs, j.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// Cancel aborts the job between MapReduce records. Idempotent; a no-op
// once the job finished.
func (j *Job) Cancel() { j.cancel() }
