// Command dtbench reproduces the paper's evaluation tables and
// figures on the simulated cluster.
//
// Usage:
//
//	dtbench -list
//	dtbench -run fig5,fig13
//	dtbench -all [-quick] [-scale 4000] [-markdown out.md]
//	dtbench -probe
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dualtable/internal/harness"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments")
		runIDs   = flag.String("run", "", "comma-separated experiment ids to run")
		all      = flag.Bool("all", false, "run every experiment")
		quick    = flag.Bool("quick", false, "smaller sweeps (for smoke testing)")
		scale    = flag.Float64("scale", 4000, "data scale divisor vs the paper (e.g. 4000 = 1/4000 of paper volume)")
		seed     = flag.Int64("seed", 20150413, "data generation seed")
		markdown = flag.String("markdown", "", "also write results as markdown to this file")
		probe    = flag.Bool("probe", false, "print sizing diagnostics and exit")
	)
	flag.Parse()

	cfg := harness.DefaultConfig()
	if *scale > 0 {
		cfg.Scale = 1.0 / *scale
	}
	cfg.Quick = *quick
	cfg.Seed = *seed

	switch {
	case *probe:
		harness.Probe(cfg)
		return
	case *list:
		for _, e := range harness.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}

	var ids []string
	if *all {
		for _, e := range harness.All() {
			ids = append(ids, e.ID)
		}
	} else if *runIDs != "" {
		ids = strings.Split(*runIDs, ",")
	} else {
		flag.Usage()
		os.Exit(2)
	}

	var md strings.Builder
	md.WriteString("# DualTable reproduction results\n\n")
	fmt.Fprintf(&md, "Configuration: scale 1/%g, quick=%v, seed %d.\n\n", 1/cfg.Scale, cfg.Quick, cfg.Seed)
	failed := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		exp, ok := harness.Get(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q (try -list)\n", id)
			failed++
			continue
		}
		res, err := exp.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed++
			continue
		}
		fmt.Println(res.Format())
		md.WriteString(res.Markdown())
	}
	if *markdown != "" {
		if err := os.WriteFile(*markdown, []byte(md.String()), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "write markdown:", err)
			failed++
		}
	}
	if failed > 0 {
		os.Exit(1)
	}
}
