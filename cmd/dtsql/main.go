// Command dtsql is an interactive SQL shell over a DualTable cluster —
// a stand-in for the Hive CLI of the paper's Figure 3. By default it
// runs an in-process simulated cluster; with -connect dt://host:port
// the same shell drives a remote dtserver through the database/sql
// driver instead (one code path, two transports). Either way the shell
// owns one session, so SET statements (e.g. SET dualtable.force.plan =
// EDIT) apply to this shell only. Statements end with ';'. Meta
// commands: \q quits, \plans shows the cost-model decision log, \set
// lists settings, \t toggles timing (\plans and \set are in-process
// only).
package main

import (
	"bufio"
	"database/sql"
	"flag"
	"fmt"
	"os"
	"strings"

	"dualtable"
	_ "dualtable/driver"
	"dualtable/internal/sim"
)

// shellResult is the transport-neutral result the REPL renders: the
// in-process path fills it from *dualtable.ResultSet, the remote path
// from database/sql rows.
type shellResult struct {
	columns    []string
	rows       []string // pre-rendered, tab-separated
	affected   int64
	plan       string
	simSeconds float64
	hasTiming  bool
}

// executor runs one ';'-terminated statement buffer.
type executor interface {
	execScript(sqlText string) (*shellResult, error)
	// meta handles a local-only meta command; false means unsupported
	// on this transport.
	meta(cmd string) bool
}

func main() {
	var (
		cluster = flag.String("cluster", "grid", "simulated cluster: grid (26 nodes) or tpch (10 nodes)")
		connect = flag.String("connect", "", "drive a remote dtserver (dt://host:port) instead of an in-process cluster")
		script  = flag.String("f", "", "execute a SQL script file and exit")
		quiet   = flag.Bool("q", false, "suppress the banner")
	)
	flag.Parse()

	var (
		ex     executor
		banner string
	)
	if *connect != "" {
		db, err := sql.Open("dualtable", *connect)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		// One connection, so SET statements stick for the whole shell.
		db.SetMaxOpenConns(1)
		if err := db.Ping(); err != nil {
			fmt.Fprintln(os.Stderr, "dtsql: connect:", err)
			os.Exit(1)
		}
		defer db.Close()
		ex = &remoteExecutor{db: db}
		banner = fmt.Sprintf("DualTable SQL shell — connected to %s", *connect)
	} else {
		cfg := dualtable.DefaultConfig()
		if *cluster == "tpch" {
			cfg.Cluster = sim.TPCHCluster()
		}
		db, err := dualtable.Open(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		ex = &localExecutor{sess: db.Session()}
		banner = fmt.Sprintf("DualTable SQL shell — simulated %s cluster", cfg.Cluster.Name)
	}

	if *script != "" {
		data, err := os.ReadFile(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		res, err := ex.execScript(string(data))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		printResult(res, true)
		return
	}

	if !*quiet {
		fmt.Println(banner)
		fmt.Println(`Statements end with ';'.  SET key = value configures this session.`)
		fmt.Println(`\q quits, \plans shows plan decisions, \set lists settings, \t toggles timing.`)
	}
	timing := true
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("dualtable> ")
		} else {
			fmt.Print("       ...> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch trimmed {
		case `\q`, "exit", "quit":
			return
		case `\t`:
			timing = !timing
			fmt.Println("timing:", timing)
			prompt()
			continue
		case `\set`, `\plans`:
			if !ex.meta(trimmed) {
				fmt.Printf("%s is not available over -connect (server-side state)\n", trimmed)
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if !strings.Contains(line, ";") {
			prompt()
			continue
		}
		sqlText := buf.String()
		buf.Reset()
		res, err := ex.execScript(sqlText)
		if err != nil {
			fmt.Println("ERROR:", err)
		} else {
			printResult(res, timing)
		}
		prompt()
	}
}

// localExecutor runs statements on an in-process session.
type localExecutor struct {
	sess *dualtable.Session
}

func (l *localExecutor) execScript(sqlText string) (*shellResult, error) {
	rs, err := l.sess.ExecScript(sqlText)
	if err != nil {
		return nil, err
	}
	if rs == nil {
		return nil, nil
	}
	res := &shellResult{
		columns:    rs.Columns,
		affected:   rs.Affected,
		plan:       rs.Plan,
		simSeconds: rs.SimSeconds,
		hasTiming:  true,
	}
	for _, r := range rs.Rows {
		res.rows = append(res.rows, r.String())
	}
	return res, nil
}

func (l *localExecutor) meta(cmd string) bool {
	switch cmd {
	case `\set`:
		for _, kv := range l.sess.Settings() {
			fmt.Printf("%s = %s\n", kv[0], kv[1])
		}
	case `\plans`:
		for _, d := range l.sess.PlanLog() {
			fmt.Printf("%-9s ratio=%.4f (%s) Δ=%.2fs  %s\n", d.Plan, d.Ratio, d.RatioSrc, d.CostDelta, d.Statement)
		}
	default:
		return false
	}
	return true
}

// remoteExecutor runs statements on a dtserver through database/sql.
// SELECTs stream over the wire as row batches; everything else (DDL,
// DML, SET, multi-statement scripts) goes through the exec path, which
// the server runs as a script and answers with the last statement's
// result.
type remoteExecutor struct {
	db *sql.DB
}

func (r *remoteExecutor) execScript(sqlText string) (*shellResult, error) {
	if firstKeyword(sqlText) == "SELECT" {
		rows, err := r.db.Query(sqlText)
		if err != nil {
			return nil, err
		}
		defer rows.Close()
		cols, err := rows.Columns()
		if err != nil {
			return nil, err
		}
		res := &shellResult{columns: cols}
		vals := make([]any, len(cols))
		ptrs := make([]any, len(cols))
		for i := range vals {
			ptrs[i] = &vals[i]
		}
		for rows.Next() {
			if err := rows.Scan(ptrs...); err != nil {
				return nil, err
			}
			res.rows = append(res.rows, renderRow(vals))
		}
		if err := rows.Err(); err != nil {
			return nil, err
		}
		return res, nil
	}
	sr, err := r.db.Exec(sqlText)
	if err != nil {
		return nil, err
	}
	res := &shellResult{}
	if n, err := sr.RowsAffected(); err == nil {
		res.affected = n
	}
	return res, nil
}

func (r *remoteExecutor) meta(string) bool { return false }

// firstKeyword returns the upper-cased first SQL token, skipping
// leading whitespace and '--' comments.
func firstKeyword(sqlText string) string {
	for _, line := range strings.Split(sqlText, "\n") {
		t := strings.TrimSpace(line)
		if t == "" || strings.HasPrefix(t, "--") {
			continue
		}
		if i := strings.IndexAny(t, " \t("); i >= 0 {
			t = t[:i]
		}
		return strings.ToUpper(t)
	}
	return ""
}

func renderRow(vals []any) string {
	parts := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case nil:
			parts[i] = "NULL"
		case []byte:
			parts[i] = string(x)
		default:
			parts[i] = fmt.Sprint(x)
		}
	}
	return strings.Join(parts, "\t")
}

func printResult(res *shellResult, timing bool) {
	if res == nil {
		return
	}
	if len(res.columns) > 0 {
		fmt.Println(strings.Join(res.columns, "\t"))
		for _, r := range res.rows {
			fmt.Println(r)
		}
		fmt.Printf("%d row(s)", len(res.rows))
	} else {
		fmt.Printf("OK, %d row(s) affected", res.affected)
	}
	if res.plan != "" {
		fmt.Printf("  [plan: %s]", res.plan)
	}
	if timing && res.hasTiming {
		fmt.Printf("  (%.2f simulated cluster seconds)", res.simSeconds)
	}
	fmt.Println()
}
