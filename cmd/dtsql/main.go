// Command dtsql is an interactive SQL shell over an in-memory
// DualTable cluster — a stand-in for the Hive CLI of the paper's
// Figure 3. The shell runs on its own *dualtable.Session, so SET
// statements (e.g. SET dualtable.force.plan = EDIT) apply to this
// shell only; a bare SET lists the session's settings. Statements end
// with ';'. Meta commands: \q quits, \plans shows this session's
// cost-model decision log, \set lists settings, \t toggles timing.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"dualtable"
	"dualtable/internal/sim"
)

func main() {
	var (
		cluster = flag.String("cluster", "grid", "simulated cluster: grid (26 nodes) or tpch (10 nodes)")
		script  = flag.String("f", "", "execute a SQL script file and exit")
		quiet   = flag.Bool("q", false, "suppress the banner")
	)
	flag.Parse()

	cfg := dualtable.DefaultConfig()
	if *cluster == "tpch" {
		cfg.Cluster = sim.TPCHCluster()
	}
	db, err := dualtable.Open(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	sess := db.Session()

	if *script != "" {
		data, err := os.ReadFile(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rs, err := sess.ExecScript(string(data))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		printResult(rs, true)
		return
	}

	if !*quiet {
		fmt.Printf("DualTable SQL shell — simulated %s cluster\n", cfg.Cluster.Name)
		fmt.Println(`Statements end with ';'.  SET key = value configures this session.`)
		fmt.Println(`\q quits, \plans shows plan decisions, \set lists settings, \t toggles timing.`)
	}
	timing := true
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("dualtable> ")
		} else {
			fmt.Print("       ...> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch trimmed {
		case `\q`, "exit", "quit":
			return
		case `\t`:
			timing = !timing
			fmt.Println("timing:", timing)
			prompt()
			continue
		case `\set`:
			for _, kv := range sess.Settings() {
				fmt.Printf("%s = %s\n", kv[0], kv[1])
			}
			prompt()
			continue
		case `\plans`:
			for _, d := range sess.PlanLog() {
				fmt.Printf("%-9s ratio=%.4f (%s) Δ=%.2fs  %s\n", d.Plan, d.Ratio, d.RatioSrc, d.CostDelta, d.Statement)
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if !strings.Contains(line, ";") {
			prompt()
			continue
		}
		sqlText := buf.String()
		buf.Reset()
		rs, err := sess.ExecScript(sqlText)
		if err != nil {
			fmt.Println("ERROR:", err)
		} else {
			printResult(rs, timing)
		}
		prompt()
	}
}

func printResult(rs *dualtable.ResultSet, timing bool) {
	if rs == nil {
		return
	}
	if len(rs.Columns) > 0 {
		fmt.Println(strings.Join(rs.Columns, "\t"))
		for _, r := range rs.Rows {
			fmt.Println(r.String())
		}
		fmt.Printf("%d row(s)", len(rs.Rows))
	} else {
		fmt.Printf("OK, %d row(s) affected", rs.Affected)
	}
	if rs.Plan != "" {
		fmt.Printf("  [plan: %s]", rs.Plan)
	}
	if timing {
		fmt.Printf("  (%.2f simulated cluster seconds)", rs.SimSeconds)
	}
	fmt.Println()
}
