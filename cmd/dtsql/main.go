// Command dtsql is an interactive SQL shell over an in-memory
// DualTable cluster — a stand-in for the Hive CLI of the paper's
// Figure 3. Statements end with ';'. Meta commands: \q quits,
// \plans shows the cost-model decision log, \t toggles timing.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"dualtable"
	"dualtable/internal/sim"
)

func main() {
	var (
		cluster = flag.String("cluster", "grid", "simulated cluster: grid (26 nodes) or tpch (10 nodes)")
		script  = flag.String("f", "", "execute a SQL script file and exit")
		quiet   = flag.Bool("q", false, "suppress the banner")
	)
	flag.Parse()

	cfg := dualtable.DefaultConfig()
	if *cluster == "tpch" {
		cfg.Cluster = sim.TPCHCluster()
	}
	db, err := dualtable.Open(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *script != "" {
		data, err := os.ReadFile(*script)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		rs, err := db.ExecScript(string(data))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		printResult(rs, true)
		return
	}

	if !*quiet {
		fmt.Printf("DualTable SQL shell — simulated %s cluster\n", cfg.Cluster.Name)
		fmt.Println(`Statements end with ';'.  \q quits, \plans shows plan decisions, \t toggles timing.`)
	}
	timing := true
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() {
		if buf.Len() == 0 {
			fmt.Print("dualtable> ")
		} else {
			fmt.Print("       ...> ")
		}
	}
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch trimmed {
		case `\q`, "exit", "quit":
			return
		case `\t`:
			timing = !timing
			fmt.Println("timing:", timing)
			prompt()
			continue
		case `\plans`:
			for _, d := range db.PlanLog() {
				fmt.Printf("%-9s ratio=%.4f (%s) Δ=%.2fs  %s\n", d.Plan, d.Ratio, d.RatioSrc, d.CostDelta, d.Statement)
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteString("\n")
		if !strings.Contains(line, ";") {
			prompt()
			continue
		}
		sqlText := buf.String()
		buf.Reset()
		rs, err := db.ExecScript(sqlText)
		if err != nil {
			fmt.Println("ERROR:", err)
		} else {
			printResult(rs, timing)
		}
		prompt()
	}
}

func printResult(rs *dualtable.ResultSet, timing bool) {
	if rs == nil {
		return
	}
	if len(rs.Columns) > 0 {
		fmt.Println(strings.Join(rs.Columns, "\t"))
		for _, r := range rs.Rows {
			fmt.Println(r.String())
		}
		fmt.Printf("%d row(s)", len(rs.Rows))
	} else {
		fmt.Printf("OK, %d row(s) affected", rs.Affected)
	}
	if rs.Plan != "" {
		fmt.Printf("  [plan: %s]", rs.Plan)
	}
	if timing {
		fmt.Printf("  (%.2f simulated cluster seconds)", rs.SimSeconds)
	}
	fmt.Println()
}
