// Command dtlint is DualTable's static-analysis gate: it runs the
// internal/analysis suite — the engine's concurrency, pinning, and
// wire contracts encoded as analyzers — over the module and exits
// non-zero on any finding.
//
// Usage:
//
//	go run ./cmd/dtlint ./...          # whole module (the CI gate)
//	go run ./cmd/dtlint ./internal/core ./internal/server
//	go run ./cmd/dtlint -list          # print the analyzers and exit
//
// Findings print as file:line:col: analyzer: message. A finding can
// be silenced in place with a reasoned directive on the same line or
// the line above:
//
//	//lint:ignore dtlint/ctxflow nil ExecContext means no caller ctx
//
// Directives without a reason are themselves findings. Test files
// are not analyzed (the contracts govern production code; tests
// exercise violations on purpose), and testdata trees are skipped.
package main

import (
	"flag"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"dualtable/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: dtlint [-list] [./... | dir ...]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	root, err := moduleRoot()
	if err != nil {
		fatal(err)
	}
	dirs, err := packageDirs(root, flag.Args())
	if err != nil {
		fatal(err)
	}

	findings := 0
	for _, dir := range dirs {
		fset := token.NewFileSet()
		files, err := parseDir(fset, dir)
		if err != nil {
			fatal(err)
		}
		if len(files) == 0 {
			continue
		}
		diags, err := analysis.RunAnalyzers(analyzers, fset, files, importPath(root, dir))
		if err != nil {
			fatal(err)
		}
		diags = analysis.Filter(fset, files, diags)
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			rel, rerr := filepath.Rel(root, pos.Filename)
			if rerr != nil {
				rel = pos.Filename
			}
			fmt.Printf("%s:%d:%d: %s: %s\n", rel, pos.Line, pos.Column, d.Analyzer.Name, d.Message)
			findings++
		}
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "dtlint: %d finding(s)\n", findings)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dtlint:", err)
	os.Exit(2)
}

// moduleRoot walks up from the working directory to the nearest
// go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above the working directory")
		}
		dir = parent
	}
}

// packageDirs resolves the argument patterns to package directories.
// "./..." (or no arguments) walks the whole module; other arguments
// name directories, with a trailing /... walking recursively.
func packageDirs(root string, args []string) ([]string, error) {
	if len(args) == 0 {
		args = []string{"./..."}
	}
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, arg := range args {
		recursive := false
		if strings.HasSuffix(arg, "/...") {
			recursive = true
			arg = strings.TrimSuffix(arg, "/...")
		}
		if arg == "." || arg == "" {
			arg = root
		}
		base := arg
		if !filepath.IsAbs(base) {
			base = filepath.Join(root, strings.TrimPrefix(arg, "./"))
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses a directory's production .go files (tests are not
// analyzed: the contracts govern production code, and test helpers
// exercise violations on purpose).
func parseDir(fset *token.FileSet, dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("no such directory: %s", dir)
		}
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

// importPath maps a directory to its import path in the module.
func importPath(root, dir string) string {
	const module = "dualtable"
	rel, err := filepath.Rel(root, dir)
	if err != nil || rel == "." {
		return module
	}
	return module + "/" + filepath.ToSlash(rel)
}
