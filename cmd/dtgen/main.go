// Command dtgen writes the paper's data sets as delimited text files
// (loadable with LOAD DATA INPATH) to the local filesystem, for
// inspection or external use.
//
//	dtgen -dataset tpch -rows 100000 -out /tmp/tpch
//	dtgen -dataset grid -scale 10000 -out /tmp/grid
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"dualtable/internal/datum"
	"dualtable/internal/workload"
)

func main() {
	var (
		dataset = flag.String("dataset", "tpch", "tpch or grid")
		rows    = flag.Int("rows", 100000, "tpch: lineitem rows (orders = rows/4)")
		scale   = flag.Float64("scale", 10000, "grid: divisor of the paper's record counts")
		seed    = flag.Int64("seed", 62701, "generation seed")
		out     = flag.String("out", ".", "output directory")
	)
	flag.Parse()
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	switch *dataset {
	case "tpch":
		write(*out, "lineitem.tbl", workload.GenLineitem(*rows, *seed))
		write(*out, "orders.tbl", workload.GenOrders(*rows/4, *seed))
	case "grid":
		cfg := workload.DefaultGridConfig()
		cfg.Scale = 1.0 / *scale
		cfg.Seed = *seed
		for _, t := range append(workload.GridTablesII(), workload.GridTablesIII()...) {
			write(*out, t.Name+".tbl", t.Rows(cfg))
			fmt.Printf("-- %s\n%s;\n", t.Name, t.CreateSQL(cfg))
		}
	default:
		fatal(fmt.Errorf("unknown dataset %q", *dataset))
	}
}

func write(dir, name string, rows []datum.Row) {
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	var sb strings.Builder
	for _, r := range rows {
		sb.Reset()
		for i, d := range r {
			if i > 0 {
				sb.WriteByte('|')
			}
			if d.IsNull() {
				sb.WriteString(`\N`)
			} else {
				sb.WriteString(d.String())
			}
		}
		sb.WriteByte('\n')
		if _, err := f.WriteString(sb.String()); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("wrote %s (%d rows)\n", filepath.Join(dir, name), len(rows))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dtgen:", err)
	os.Exit(1)
}
