// Command dtserver serves an in-memory DualTable cluster over TCP,
// speaking the dtserver wire protocol. Clients connect through the
// dualtable database/sql driver:
//
//	dtserver -addr 127.0.0.1:7717 &
//	... sql.Open("dualtable", "dt://127.0.0.1:7717")
//
// Each connection gets its own engine session (SET statements apply
// per connection); statements run under per-tenant admission control:
// -max-concurrent caps concurrently executing statements, up to
// -queue-depth more wait at most -queue-wait for a slot, and the rest
// are shed with the typed "server busy" error. SIGINT/SIGTERM drain
// gracefully: the listener closes, new statements are rejected with
// the retryable busy error, in-flight statements get -drain-timeout
// to finish, stragglers are hard-canceled via their contexts, and the
// process prints drain stats and exits 0. Connections silent past
// -idle-timeout with nothing in flight are reaped.
package main

import (
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	_ "net/http/pprof"

	"dualtable"
	"dualtable/internal/server"
	"dualtable/internal/sim"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7717", "TCP listen address")
		cluster   = flag.String("cluster", "grid", "simulated cluster: grid (26 nodes) or tpch (10 nodes)")
		maxConc   = flag.Int("max-concurrent", 8, "per-tenant cap on concurrently executing statements")
		queueDep  = flag.Int("queue-depth", 16, "per-tenant wait-queue depth beyond the cap (0 = shed immediately)")
		queueWait = flag.Duration("queue-wait", 2*time.Second, "max time a queued statement waits before being shed")
		initFile  = flag.String("init", "", "SQL script executed on the default session before serving")
		quiet     = flag.Bool("q", false, "suppress per-connection logging")
		drainTO   = flag.Duration("drain-timeout", 10*time.Second, "max time in-flight statements get to finish on SIGTERM/SIGINT")
		idleTO    = flag.Duration("idle-timeout", 0, "close connections idle this long with nothing in flight (0 = never)")
		stmtTO    = flag.Duration("statement-timeout", 0, "default per-statement execution deadline (0 = none; sessions override via SET statement.timeout)")
		maxStmtTO = flag.Duration("max-statement-timeout", 0, "hard cap on the per-statement deadline; sessions cannot raise or disable past it (0 = uncapped)")
		writeTO   = flag.Duration("write-timeout", 30*time.Second, "per-frame write deadline; a client not draining its socket fails the op (<0 = disabled)")
		progTO    = flag.Duration("progress-timeout", 30*time.Second, "reap a streaming query whose client grants no flow-control credits for this long (<0 = disabled)")
		maxRows   = flag.Int64("max-rows-per-statement", 0, "per-tenant cap on rows returned/streamed by one statement (0 = unlimited)")
		maxBytes  = flag.Int64("max-bytes-per-statement", 0, "per-tenant cap on encoded result bytes sent by one statement (0 = unlimited)")
		maxTenant = flag.Int64("max-tenant-bytes", 0, "cap on a tenant's total in-flight result memory across statements (0 = unlimited)")
		debugAddr = flag.String("debug-addr", "", "serve net/http/pprof and expvar debug endpoints on this address (e.g. 127.0.0.1:6060; empty = disabled)")
	)
	flag.Parse()

	cfg := dualtable.DefaultConfig()
	if *cluster == "tpch" {
		cfg.Cluster = sim.TPCHCluster()
	}
	db, err := dualtable.Open(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtserver:", err)
		os.Exit(1)
	}

	if *initFile != "" {
		script, err := os.ReadFile(*initFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtserver:", err)
			os.Exit(1)
		}
		if _, err := db.ExecScript(string(script)); err != nil {
			fmt.Fprintln(os.Stderr, "dtserver: init script:", err)
			os.Exit(1)
		}
	}

	scfg := server.Config{
		Addr:                    *addr,
		MaxConcurrent:           *maxConc,
		QueueDepth:              *queueDep,
		QueueWait:               *queueWait,
		IdleTimeout:             *idleTO,
		DefaultStatementTimeout: *stmtTO,
		MaxStatementTimeout:     *maxStmtTO,
		WriteTimeout:            *writeTO,
		ProgressTimeout:         *progTO,
		MaxRowsPerStatement:     *maxRows,
		MaxBytesPerStatement:    *maxBytes,
		MaxTenantBytes:          *maxTenant,
	}
	if !*quiet {
		scfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "dtserver: "+format+"\n", args...)
		}
	}
	srv := server.New(db, scfg)
	bound, err := srv.Listen()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtserver:", err)
		os.Exit(1)
	}
	fmt.Printf("dtserver listening on %s (cluster=%s, max-concurrent=%d, queue-depth=%d, queue-wait=%s)\n",
		bound, cfg.Cluster.Name, *maxConc, *queueDep, *queueWait)

	if *debugAddr != "" {
		// Admission/serving counters under /debug/vars, CPU and heap
		// profiles under /debug/pprof/ — both register themselves on
		// http.DefaultServeMux. Bind to localhost; the endpoints are
		// unauthenticated.
		expvar.Publish("dtserver", expvar.Func(func() any { return srv.Stats() }))
		go func() {
			if err := http.ListenAndServe(*debugAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "dtserver: debug endpoint:", err)
			}
		}()
		fmt.Printf("dtserver debug endpoints (expvar, pprof) on http://%s/debug/\n", *debugAddr)
	}

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()

	select {
	case sig := <-sigc:
		fmt.Printf("dtserver: %s, draining (up to %s)\n", sig, *drainTO)
		ds := srv.Shutdown(*drainTO)
		st := srv.Stats()
		fmt.Printf("dtserver: drain finished=%d hard-cancelled=%d\n", ds.Finished, ds.HardCancelled)
		fmt.Printf("dtserver: served %d statements (%d queued, %d shed), bye\n",
			st.Admitted, st.Queued, st.Shed)
	case err := <-errc:
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtserver:", err)
			os.Exit(1)
		}
	}
}
