// Command dtserver serves an in-memory DualTable cluster over TCP,
// speaking the dtserver wire protocol. Clients connect through the
// dualtable database/sql driver:
//
//	dtserver -addr 127.0.0.1:7717 &
//	... sql.Open("dualtable", "dt://127.0.0.1:7717")
//
// Each connection gets its own engine session (SET statements apply
// per connection); statements run under per-tenant admission control:
// -max-concurrent caps concurrently executing statements, up to
// -queue-depth more wait at most -queue-wait for a slot, and the rest
// are shed with the typed "server busy" error. SIGINT/SIGTERM shut
// down cleanly: in-flight statements are canceled, sessions closed,
// and the process exits 0.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dualtable"
	"dualtable/internal/server"
	"dualtable/internal/sim"
)

func main() {
	var (
		addr      = flag.String("addr", "127.0.0.1:7717", "TCP listen address")
		cluster   = flag.String("cluster", "grid", "simulated cluster: grid (26 nodes) or tpch (10 nodes)")
		maxConc   = flag.Int("max-concurrent", 8, "per-tenant cap on concurrently executing statements")
		queueDep  = flag.Int("queue-depth", 16, "per-tenant wait-queue depth beyond the cap (0 = shed immediately)")
		queueWait = flag.Duration("queue-wait", 2*time.Second, "max time a queued statement waits before being shed")
		initFile  = flag.String("init", "", "SQL script executed on the default session before serving")
		quiet     = flag.Bool("q", false, "suppress per-connection logging")
	)
	flag.Parse()

	cfg := dualtable.DefaultConfig()
	if *cluster == "tpch" {
		cfg.Cluster = sim.TPCHCluster()
	}
	db, err := dualtable.Open(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtserver:", err)
		os.Exit(1)
	}

	if *initFile != "" {
		script, err := os.ReadFile(*initFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtserver:", err)
			os.Exit(1)
		}
		if _, err := db.ExecScript(string(script)); err != nil {
			fmt.Fprintln(os.Stderr, "dtserver: init script:", err)
			os.Exit(1)
		}
	}

	scfg := server.Config{
		Addr:          *addr,
		MaxConcurrent: *maxConc,
		QueueDepth:    *queueDep,
		QueueWait:     *queueWait,
	}
	if !*quiet {
		scfg.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "dtserver: "+format+"\n", args...)
		}
	}
	srv := server.New(db, scfg)
	bound, err := srv.Listen()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dtserver:", err)
		os.Exit(1)
	}
	fmt.Printf("dtserver listening on %s (cluster=%s, max-concurrent=%d, queue-depth=%d, queue-wait=%s)\n",
		bound, cfg.Cluster.Name, *maxConc, *queueDep, *queueWait)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()

	select {
	case sig := <-sigc:
		fmt.Printf("dtserver: %s, shutting down\n", sig)
		srv.Close()
		st := srv.Stats()
		fmt.Printf("dtserver: served %d statements (%d queued, %d shed), bye\n",
			st.Admitted, st.Queued, st.Shed)
	case err := <-errc:
		if err != nil {
			fmt.Fprintln(os.Stderr, "dtserver:", err)
			os.Exit(1)
		}
	}
}
